"""Convoy discovery (Jeung et al., VLDB 2008).

A convoy is a group of at least ``m`` objects that are density-connected
(DBSCAN with radius ``eps``) at every one of at least ``k`` consecutive time
snapshots.  The implementation samples the MOD at a regular snapshot
interval, clusters each snapshot, and extends candidate convoys snapshot by
snapshot (the CMC — coherent moving cluster — scheme).

Convoy discovery is the canonical "co-movement pattern" family the paper
mentions; its hard-to-tune ``m``/``k``/``eps`` parameters are part of the
motivation for S2T's parameter-light design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hermes.mod import MOD
from repro.hermes.trajectory import SubTrajectory, Trajectory
from repro.hermes.types import Period
from repro.qut.retratree import subtrajectory_from_slice
from repro.s2t.result import Cluster, ClusteringResult

__all__ = ["ConvoyParams", "ConvoyDiscovery", "Convoy"]


@dataclass(frozen=True)
class ConvoyParams:
    """Convoy discovery parameters.

    ``eps``: DBSCAN radius per snapshot (``None`` resolves to 5 % of the
    spatial diagonal); ``min_objects`` (m): minimum convoy size;
    ``min_duration_snapshots`` (k): minimum consecutive snapshots;
    ``snapshot_interval``: sampling step (``None`` resolves to 1/50 of the
    MOD lifespan).
    """

    eps: float | None = None
    min_objects: int = 3
    min_duration_snapshots: int = 3
    snapshot_interval: float | None = None

    def resolved(self, mod: MOD) -> "ConvoyParams":
        bbox = mod.bbox
        diag = (bbox.dx**2 + bbox.dy**2) ** 0.5
        period = mod.period
        return ConvoyParams(
            eps=self.eps if self.eps is not None else 0.05 * diag,
            min_objects=self.min_objects,
            min_duration_snapshots=self.min_duration_snapshots,
            snapshot_interval=(
                self.snapshot_interval
                if self.snapshot_interval is not None
                else period.duration / 50.0
            ),
        )


@dataclass
class Convoy:
    """A discovered convoy: the object set and its lifetime."""

    objects: frozenset[tuple[str, str]]
    start_time: float
    end_time: float

    @property
    def period(self) -> Period:
        return Period(self.start_time, self.end_time)


class ConvoyDiscovery:
    """Coherent-moving-cluster style convoy discovery."""

    def __init__(self, params: ConvoyParams | None = None) -> None:
        self.params = params or ConvoyParams()

    def fit(self, mod: MOD) -> ClusteringResult:
        start_all = time.perf_counter()
        params = self.params.resolved(mod)
        assert params.eps is not None and params.snapshot_interval is not None

        period = mod.period
        n_snapshots = max(2, int(period.duration / params.snapshot_interval) + 1)
        snapshot_times = np.linspace(period.tmin, period.tmax, n_snapshots)
        trajectories = mod.trajectories()

        convoys: list[Convoy] = []
        # Candidates: (object set, start snapshot index, last snapshot index).
        candidates: list[tuple[frozenset, int, int]] = []

        for snap_idx, t in enumerate(snapshot_times):
            alive = [traj for traj in trajectories if traj.period.contains(t)]
            groups = self._snapshot_clusters(alive, float(t), params)

            new_candidates: list[tuple[frozenset, int, int]] = []
            matched_groups = [False] * len(groups)
            for objects, start_idx, _last_idx in candidates:
                extended = False
                for g_idx, group in enumerate(groups):
                    common = objects & group
                    if len(common) >= params.min_objects:
                        new_candidates.append((frozenset(common), start_idx, snap_idx))
                        matched_groups[g_idx] = True
                        extended = True
                        break
                if not extended:
                    # The candidate ends at the previous snapshot.
                    length = _last_idx - start_idx + 1
                    if length >= params.min_duration_snapshots:
                        convoys.append(
                            Convoy(
                                objects=objects,
                                start_time=float(snapshot_times[start_idx]),
                                end_time=float(snapshot_times[_last_idx]),
                            )
                        )
            for g_idx, group in enumerate(groups):
                if not matched_groups[g_idx] and len(group) >= params.min_objects:
                    new_candidates.append((frozenset(group), snap_idx, snap_idx))
            candidates = new_candidates

        # Close candidates still open at the end.
        for objects, start_idx, last_idx in candidates:
            length = last_idx - start_idx + 1
            if length >= params.min_duration_snapshots:
                convoys.append(
                    Convoy(
                        objects=objects,
                        start_time=float(snapshot_times[start_idx]),
                        end_time=float(snapshot_times[last_idx]),
                    )
                )

        result = self._to_result(mod, convoys, params)
        result.timings["total"] = time.perf_counter() - start_all
        return result

    # -- internals --------------------------------------------------------------

    def _snapshot_clusters(
        self, alive: list[Trajectory], t: float, params: ConvoyParams
    ) -> list[set[tuple[str, str]]]:
        """DBSCAN over object positions at instant ``t``; returns object-key groups."""
        assert params.eps is not None
        if not alive:
            return []
        positions = np.array([[*traj.position_at(t).as_tuple()[:2]] for traj in alive])
        n = len(alive)
        labels = [-2] * n

        dists = np.hypot(
            positions[:, None, 0] - positions[None, :, 0],
            positions[:, None, 1] - positions[None, :, 1],
        )

        def neighbours(i: int) -> list[int]:
            return [j for j in range(n) if j != i and dists[i, j] <= params.eps]

        cluster_id = 0
        for i in range(n):
            if labels[i] != -2:
                continue
            nbrs = neighbours(i)
            if len(nbrs) + 1 < params.min_objects:
                labels[i] = -1
                continue
            labels[i] = cluster_id
            queue = list(nbrs)
            while queue:
                j = queue.pop()
                if labels[j] == -1:
                    labels[j] = cluster_id
                if labels[j] != -2:
                    continue
                labels[j] = cluster_id
                j_nbrs = neighbours(j)
                if len(j_nbrs) + 1 >= params.min_objects:
                    queue.extend(j_nbrs)
            cluster_id += 1

        groups: dict[int, set[tuple[str, str]]] = {}
        for idx, label in enumerate(labels):
            if label >= 0:
                groups.setdefault(label, set()).add(alive[idx].key)
        return list(groups.values())

    def _to_result(
        self, mod: MOD, convoys: list[Convoy], params: ConvoyParams
    ) -> ClusteringResult:
        """Map convoys onto the shared result model.

        Each convoy becomes a cluster whose members are the participating
        objects' movements restricted to the convoy lifetime.
        """
        clusters: list[Cluster] = []
        covered: set[tuple[str, str]] = set()
        for cluster_id, convoy in enumerate(
            sorted(convoys, key=lambda c: len(c.objects), reverse=True)
        ):
            members: list[SubTrajectory] = []
            for key in sorted(convoy.objects):
                traj = mod.get(key)
                piece = traj.slice_period(convoy.period)
                if piece is None:
                    continue
                members.append(subtrajectory_from_slice(traj, piece))
                covered.add(key)
            if len(members) >= params.min_objects:
                representative = max(members, key=lambda m: m.traj.duration)
                clusters.append(
                    Cluster(cluster_id=cluster_id, representative=representative, members=members)
                )
        outliers = [
            traj.subtrajectory(0, traj.num_points - 1)
            for traj in mod
            if traj.key not in covered
        ]
        for new_id, cluster in enumerate(clusters):
            cluster.cluster_id = new_id
        result = ClusteringResult(
            method="convoy", clusters=clusters, outliers=outliers, params=params, timings={}
        )
        result.extras = {"num_convoys": len(convoys)}
        return result
