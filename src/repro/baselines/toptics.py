"""T-OPTICS: time-focused clustering of whole trajectories.

Nanni & Pedreschi (2006) run the OPTICS density ordering over *entire*
trajectories using a time-aware trajectory distance (the average synchronous
Euclidean distance).  The implementation below follows the classic OPTICS
algorithm (core distance / reachability distance / ordered seeds) and then
extracts clusters by cutting the reachability plot at ``eps_cut``.

Because the unit of clustering is the whole trajectory, an object that
follows flow A for half of its lifespan and flow B afterwards cannot be split
— the structural limitation sub-trajectory clustering removes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.hermes.distances import spatiotemporal_distance
from repro.hermes.mod import MOD
from repro.hermes.trajectory import SubTrajectory
from repro.s2t.result import Cluster, ClusteringResult

__all__ = ["TOpticsParams", "TOpticsClustering"]


@dataclass(frozen=True)
class TOpticsParams:
    """OPTICS parameters.

    ``max_eps`` bounds the neighbourhood search (``None`` = unbounded),
    ``min_pts`` is the core-point density threshold, and ``eps_cut`` is the
    reachability threshold used to extract flat clusters (``None`` resolves
    to 5 % of the spatial diagonal).
    """

    max_eps: float | None = None
    min_pts: int = 3
    eps_cut: float | None = None

    def resolved(self, mod: MOD) -> "TOpticsParams":
        bbox = mod.bbox
        diag = (bbox.dx**2 + bbox.dy**2) ** 0.5
        return TOpticsParams(
            max_eps=self.max_eps if self.max_eps is not None else math.inf,
            min_pts=self.min_pts,
            eps_cut=self.eps_cut if self.eps_cut is not None else 0.05 * diag,
        )


class TOpticsClustering:
    """OPTICS ordering + reachability cut over whole trajectories."""

    def __init__(self, params: TOpticsParams | None = None) -> None:
        self.params = params or TOpticsParams()

    def fit(self, mod: MOD) -> ClusteringResult:
        start_all = time.perf_counter()
        params = self.params.resolved(mod)
        assert params.max_eps is not None and params.eps_cut is not None

        trajectories = mod.trajectories()
        n = len(trajectories)

        # Pairwise time-aware distance matrix.
        t0 = time.perf_counter()
        dist = np.full((n, n), math.inf)
        np.fill_diagonal(dist, 0.0)
        for i in range(n):
            for j in range(i + 1, n):
                d = spatiotemporal_distance(trajectories[i], trajectories[j], max_samples=64)
                dist[i, j] = dist[j, i] = d
        distance_time = time.perf_counter() - t0

        # OPTICS ordering.
        t0 = time.perf_counter()
        order, reachability = self._optics_order(dist, params)
        optics_time = time.perf_counter() - t0

        # Flat clusters: consecutive ordered points with reachability <= eps_cut.
        labels = [-1] * n
        cluster_id = -1
        for pos, idx in enumerate(order):
            if reachability[idx] > params.eps_cut:
                # Start a new cluster only if this point is a core point for the cut.
                neighbours = np.sum(dist[idx] <= params.eps_cut)
                if neighbours >= params.min_pts:
                    cluster_id += 1
                    labels[idx] = cluster_id
            else:
                labels[idx] = cluster_id if cluster_id >= 0 else -1

        clusters: dict[int, list[int]] = {}
        noise: list[int] = []
        for idx, label in enumerate(labels):
            if label < 0:
                noise.append(idx)
            else:
                clusters.setdefault(label, []).append(idx)

        def whole(idx: int) -> SubTrajectory:
            traj = trajectories[idx]
            return traj.subtrajectory(0, traj.num_points - 1)

        result_clusters: list[Cluster] = []
        for new_id, indices in enumerate(sorted(clusters.values(), key=len, reverse=True)):
            members = [whole(i) for i in indices]
            # Medoid under the precomputed distance matrix.
            sub = dist[np.ix_(indices, indices)]
            finite = np.where(np.isfinite(sub), sub, np.nanmax(sub[np.isfinite(sub)]) if np.isfinite(sub).any() else 0.0)
            medoid_local = int(np.argmin(finite.sum(axis=1)))
            result_clusters.append(
                Cluster(
                    cluster_id=new_id,
                    representative=members[medoid_local],
                    members=members,
                )
            )
        outliers = [whole(i) for i in noise]

        return ClusteringResult(
            method="t-optics",
            clusters=result_clusters,
            outliers=outliers,
            params=params,
            timings={
                "distances": distance_time,
                "optics": optics_time,
                "extraction": time.perf_counter() - start_all - distance_time - optics_time,
            },
        )

    # -- internals ------------------------------------------------------------

    def _optics_order(
        self, dist: np.ndarray, params: TOpticsParams
    ) -> tuple[list[int], np.ndarray]:
        """Classic OPTICS: returns the visit order and reachability distances."""
        assert params.max_eps is not None
        n = dist.shape[0]
        reachability = np.full(n, math.inf)
        processed = np.zeros(n, dtype=bool)
        order: list[int] = []

        def core_distance(idx: int) -> float:
            neighbours = np.sort(dist[idx][dist[idx] <= params.max_eps])
            # neighbours includes the point itself (distance 0).
            if len(neighbours) < params.min_pts:
                return math.inf
            return float(neighbours[params.min_pts - 1])

        for start in range(n):
            if processed[start]:
                continue
            processed[start] = True
            order.append(start)
            seeds: dict[int, float] = {}
            self._update_seeds(start, dist, core_distance(start), processed, seeds, params)
            while seeds:
                current = min(seeds, key=seeds.get)
                reachability[current] = seeds.pop(current)
                processed[current] = True
                order.append(current)
                self._update_seeds(
                    current, dist, core_distance(current), processed, seeds, params
                )
        return order, reachability

    @staticmethod
    def _update_seeds(
        idx: int,
        dist: np.ndarray,
        core_dist: float,
        processed: np.ndarray,
        seeds: dict[int, float],
        params: TOpticsParams,
    ) -> None:
        if math.isinf(core_dist):
            return
        assert params.max_eps is not None
        for other in range(dist.shape[0]):
            if processed[other] or dist[idx, other] > params.max_eps:
                continue
            new_reach = max(core_dist, float(dist[idx, other]))
            if other not in seeds or new_reach < seeds[other]:
                seeds[other] = new_reach
