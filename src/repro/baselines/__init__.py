"""Baselines the paper demonstrates S2T/QuT against.

* :mod:`repro.baselines.traclus`            -- TRACLUS (Lee et al., SIGMOD
  2007): MDL partitioning + density-based grouping of line segments; spatial
  only, which is exactly the limitation the paper calls out.
* :mod:`repro.baselines.toptics`            -- T-OPTICS (Nanni & Pedreschi,
  JIIS 2006): OPTICS over whole trajectories with a time-aware distance.
* :mod:`repro.baselines.convoy`             -- Convoy discovery (Jeung et
  al., VLDB 2008): density-connected groups persisting over consecutive
  time snapshots.
* :mod:`repro.baselines.range_then_cluster` -- the paper's scenario-2
  alternative to QuT: temporal range query, fresh 3D R-tree, then
  S2T-Clustering from scratch.
"""

from repro.baselines.traclus import TraclusParams, TraclusClustering
from repro.baselines.toptics import TOpticsParams, TOpticsClustering
from repro.baselines.convoy import ConvoyParams, ConvoyDiscovery
from repro.baselines.range_then_cluster import RangeThenCluster

__all__ = [
    "TraclusParams",
    "TraclusClustering",
    "TOpticsParams",
    "TOpticsClustering",
    "ConvoyParams",
    "ConvoyDiscovery",
    "RangeThenCluster",
]
