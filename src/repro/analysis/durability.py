"""REPRO112 ``durability-ordering`` — stage, fsync, rename, fsync the directory.

The crash-safety protocol every commit path in the storage layer follows
(and the fault-injection sweep assumes) is a fixed four-beat sequence:

1. write the new bytes to a staged ``*.tmp`` sibling,
2. ``fsync`` the staged file — the bytes are durable before they become
   *reachable*,
3. ``replace``/``rename`` the staged file over the live name — the
   atomic commit point,
4. ``fsync`` the parent directory — the new directory entry is durable.

Swapping beats 2 and 3 is the classic silent corruption: after a crash
the live name can point at a zero-length or torn file and recovery finds
garbage *at the committed path*.  Forgetting beat 4 loses the rename
itself on some filesystems.  Neither bug is visible in tests that don't
cut power at exactly the wrong syscall — which is why this is a lint
rule and not only a fault-sweep concern.

The checker runs on every function in the REPRO101 scope (``storage/``
plus ``core/engine.py`` / ``core/ingest.py``; ``storage/faults.py`` is
the shim and exempt) that performs a ``replace``.  Over the function's
CFG it tracks a small state machine — *staged-dirty* after a shim
``write``, *staged-synced* after a shim ``fsync``, with the set of
renames still awaiting a directory fsync carried alongside — and reports
a finding when **any** path renames while dirty, or reaches a normal
exit with a rename not followed by ``fsync_dir`` (explicit ``raise``
paths are exempt: a crashed commit is the fault sweep's business, not
this rule's).  Local closures are inlined: the
``self._retry(stage)`` / ``self._retry(lambda: io.replace(...))``
pattern used by :meth:`~repro.storage.catalog.DurableCatalog.write_manifest`
contributes its I/O events at the reference site, in body order —
referencing a local ``def`` counts as invoking it, which is exactly the
retry-wrapper contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.base import Checker, Finding, SourceModule, dotted_name
from repro.analysis.flow.cfg import Step, WithEnter, WithExit, build_cfg, solve_forward
from repro.analysis.io_discipline import _is_shim_receiver

__all__ = ["DurabilityChecker"]

# Staging-state ranks: lower is worse, meet = min.
_DIRTY = 0  # a staged write has happened with no fsync yet
_IDLE = 1  # nothing staged (or a previous commit cycle completed)
_SYNCED = 2  # staged bytes are fsynced: safe to rename


@dataclass(frozen=True)
class _Event:
    """One durability-relevant I/O call: kind plus its source line."""

    kind: str  # "write" | "fsync" | "replace" | "fsync_dir"
    line: int


#: The dataflow state: (staging rank, lines of renames awaiting fsync_dir).
_State = tuple[int, frozenset[int]]


def _classify(call: ast.Call) -> str | None:
    """The durability event kind of a call, or ``None``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "fsync_dir":
        return "fsync_dir"
    qual = dotted_name(func)
    is_os = qual is not None and qual.startswith("os.")
    if func.attr in ("replace", "rename") and (_is_shim_receiver(func.value) or is_os):
        return "replace"
    if func.attr in ("write", "fsync") and _is_shim_receiver(func.value):
        return func.attr
    return None


class _EventExtractor:
    """In-order durability events of a step, with local closures inlined."""

    def __init__(self, local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]) -> None:
        self.local_defs = local_defs
        self._inlining: set[str] = set()

    def of_step(self, step: Step) -> list[_Event]:
        """Durability events fired by one CFG step, in execution order."""
        if isinstance(step, WithEnter):
            return self._of_node(step.context_expr)
        if isinstance(step, WithExit):
            return []
        return self._of_node(step)

    def _of_node(self, node: ast.AST) -> list[_Event]:
        events: list[_Event] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return events  # a definition executes nothing now
        if isinstance(node, ast.Name) and node.id in self.local_defs:
            events.extend(self._of_def(self.local_defs[node.id]))
            return events
        if isinstance(node, ast.Call):
            kind = _classify(node)
            # Evaluation order: the callee expression and arguments first
            # (where a closure reference or lambda body contributes its
            # events), then the call's own event.
            for child in ast.iter_child_nodes(node):
                events.extend(self._of_node(child))
            if kind is not None:
                events.append(_Event(kind, node.lineno))
            return events
        if isinstance(node, ast.Lambda):
            # A lambda in an executed expression is (in this codebase)
            # an argument to a retry wrapper: its body runs here.
            events.extend(self._of_node(node.body))
            return events
        for child in ast.iter_child_nodes(node):
            events.extend(self._of_node(child))
        return events

    def _of_def(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[_Event]:
        if func.name in self._inlining:
            return []  # recursive closure: stop
        self._inlining.add(func.name)
        try:
            return self._of_stmts(func.body)
        finally:
            self._inlining.discard(func.name)

    def _of_stmts(self, stmts: list[ast.stmt]) -> list[_Event]:
        """Body-order events of inlined statements (linear approximation)."""
        events: list[_Event] = []
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            header_exprs = [
                value for _, value in ast.iter_fields(stmt) if isinstance(value, ast.expr)
            ]
            for expr in header_exprs:
                events.extend(self._of_node(expr))
            for name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, name, None)
                if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                    events.extend(self._of_stmts(block))
            for handler in getattr(stmt, "handlers", []) or []:
                events.extend(self._of_stmts(handler.body))
            for item in getattr(stmt, "items", []) or []:
                events.extend(self._of_node(item.context_expr))
        return events


def _transfer(events: list[_Event], state: _State) -> _State:
    rank, pending = state
    for event in events:
        if event.kind == "write":
            rank = _DIRTY
        elif event.kind == "fsync":
            if rank == _DIRTY:
                rank = _SYNCED
        elif event.kind == "replace":
            rank = _IDLE
            pending = pending | {event.line}
        elif event.kind == "fsync_dir":
            pending = frozenset()
    return rank, pending


def _meet(a: _State, b: _State) -> _State:
    return min(a[0], b[0]), a[1] | b[1]


class DurabilityChecker(Checker):
    """Flag commit paths that rename before fsync or skip the directory fsync."""

    rule = "REPRO112"
    slug = "durability-ordering"
    hint = (
        "order the commit as staged write -> io.fsync(staged) -> io.replace "
        "-> io.fsync_dir(parent); every beat must happen on every path that "
        "returns normally"
    )

    def applies(self, module: SourceModule) -> bool:
        """Same scope as REPRO101: the layers that commit durable state."""
        parts = module.logical_parts
        if not parts:
            return False
        if parts[0] == "storage":
            return parts[-1] != "faults.py"  # the shim itself: raw by design
        return parts in (("core", "engine.py"), ("core", "ingest.py"))

    def check(self, module: SourceModule) -> list[Finding]:
        """Run the staging state machine over every function that renames."""
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, findings)
        return findings

    def _check_function(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        local_defs = {
            child.name: child
            for child in ast.walk(func)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not func
        }
        extractor = _EventExtractor(local_defs)
        cfg = build_cfg(func)
        step_events: dict[int, list[list[_Event]]] = {}
        has_replace = False
        for block in cfg.blocks:
            per_step = [extractor.of_step(step) for step in block.steps]
            step_events[block.id] = per_step
            if any(e.kind == "replace" for events in per_step for e in events):
                has_replace = True
        if not has_replace:
            return

        def transfer(step: Step, state: _State) -> _State:
            return _transfer(extractor.of_step(step), state)

        entries = solve_forward(cfg, (_IDLE, frozenset()), transfer, _meet)

        reported: set[tuple[str, int]] = set()

        def report(kind: str, line: int, message: str) -> None:
            if (kind, line) in reported:
                return
            reported.add((kind, line))
            findings.append(
                Finding(
                    rule=self.rule,
                    slug=self.slug,
                    path=str(module.path),
                    line=line,
                    message=message,
                    hint=self.hint,
                )
            )

        for block_id, per_step in step_events.items():
            if block_id not in entries:
                continue  # unreachable
            state = entries[block_id]
            for events in per_step:
                for event in events:
                    if event.kind == "replace" and state[0] == _DIRTY:
                        report(
                            "unsynced-rename",
                            event.line,
                            f"`{func.name}` renames a staged file that was "
                            f"written but not fsynced on some path - after a "
                            f"crash the committed name can hold torn bytes",
                        )
                state = _transfer(events, state)

        exit_state = entries.get(cfg.exit_id)
        if exit_state is not None:
            for line in sorted(exit_state[1]):
                report(
                    "missing-dirsync",
                    line,
                    f"`{func.name}` returns normally after this rename "
                    f"without an `fsync_dir` of the parent directory - the "
                    f"rename itself can be lost on crash",
                )
