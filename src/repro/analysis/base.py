"""Shared infrastructure for the ``repro-lint`` checker suite.

The analysis package enforces *project invariants* — conventions the
durable engine relies on but no generic linter knows about (I/O routed
through the fault shim, generation tokens bumped on every dataset
mutation, frozen logical plans, drained shared-memory arenas).  Every
checker is a small :mod:`ast` visitor built on three pieces defined
here:

* :class:`Finding` — one diagnostic: rule id, location, message and a
  remediation hint (mirroring the :class:`~repro.storage.errors.StorageCorruptionError`
  convention that every error tells the operator what to do next),
* :class:`SourceModule` — a parsed source file plus its comment map
  (comments carry the ``# repro-lint: allow[...]`` suppressions and the
  ``# guarded-by:`` / ``# holds:`` lock annotations, which plain
  :mod:`ast` discards),
* :class:`Checker` — the base class wiring rule metadata, per-module
  applicability and suppression filtering together.

Everything in this package is stdlib-only and engine-free on purpose:
``repro-lint`` must run in CI *before* the test jobs, on interpreters
with no third-party packages installed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.analysis.flow.summaries import ProjectIndex

__all__ = [
    "Checker",
    "Finding",
    "ProjectChecker",
    "SourceModule",
    "dotted_name",
    "receiver_tail",
]

_ALLOW_RE = re.compile(r"repro-lint:\s*allow\[([^\]]+)\]")

#: Path components stripped from the front of a module's path when
#: computing its :attr:`SourceModule.logical_parts` — checkers reason
#: about package-relative locations (``("storage", "catalog.py")``)
#: regardless of whether the scan root was ``src``, ``src/repro`` or a
#: test fixture tree.
_ROOT_PARTS = ("src", "repro")


def dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"``.

    Returns ``None`` when the chain is rooted in anything other than a
    plain name (a call result, a subscript, a literal), because then the
    receiver's identity cannot be judged statically.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_tail(node: ast.AST) -> str | None:
    """The last identifier of a receiver expression, or ``None``.

    ``self.io`` → ``"io"``; ``tmp`` → ``"tmp"``; ``frame()`` → ``None``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a checker.

    Attributes
    ----------
    rule:
        The rule id (``"REPRO101"``).
    slug:
        The human-readable rule slug (``"io-discipline"``).
    path:
        The file the finding is in, as given to the driver.
    line:
        1-based source line of the offending node.
    message:
        What is wrong, specific to the site.
    hint:
        How to fix it — every finding carries a remediation hint, same
        convention as the storage layer's corruption errors.
    """

    rule: str
    slug: str
    path: str
    line: int
    message: str
    hint: str

    def format(self) -> str:
        """Render the finding as the two-line text-format diagnostic."""
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.slug}] {self.message}\n"
            f"    hint: {self.hint}"
        )

    def to_dict(self) -> dict[str, object]:
        """The finding as a JSON-serialisable dict (``--format=json``)."""
        return {
            "rule": self.rule,
            "slug": self.slug,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


class SourceModule:
    """A parsed source file plus the comment map the checkers need.

    Parameters
    ----------
    path:
        Where the source came from (used verbatim in findings).
    text:
        The file's source text.

    Attributes
    ----------
    tree:
        The parsed :class:`ast.Module`.
    comments:
        Mapping of 1-based line number to the comment on that line
        (including the leading ``#``), built with :mod:`tokenize` so
        trailing annotations like ``# guarded-by: _lock`` survive
        parsing.
    """

    def __init__(self, path: str | Path, text: str, root: Path | None = None) -> None:
        self.path = Path(path)
        self.root = root
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.comments = self._comment_map(text)
        self.decorator_starts = self._decorator_map(self.tree)

    @classmethod
    def from_path(cls, path: str | Path, root: Path | None = None) -> SourceModule:
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source).

        ``root`` is the directory the driver was asked to scan, when there
        was one; :attr:`logical_parts` is computed relative to it, so a
        fixture tree laid out like ``src/repro`` triggers the same rules.
        """
        return cls(path, Path(path).read_text(), root=root)

    @staticmethod
    def _comment_map(text: str) -> dict[int, str]:
        """1-based line → comment text, via :mod:`tokenize`."""
        comments: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            pass
        return comments

    @staticmethod
    def _decorator_map(tree: ast.Module) -> dict[int, int]:
        """``def``/``class`` line → first decorator line, for decorated defs.

        Findings anchor to the ``def`` line, but a suppression comment
        naturally sits *above the decorator stack*; this map lets
        :meth:`allowed_rules` bridge the gap.
        """
        starts: dict[int, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.decorator_list:
                    starts[node.lineno] = min(d.lineno for d in node.decorator_list)
        return starts

    @property
    def logical_parts(self) -> tuple[str, ...]:
        """Path components with any leading ``src``/``repro`` stripped.

        Checkers match on these (``("storage", "catalog.py")``) so the
        same rules fire whether the driver scanned ``src/repro`` or a
        fixture tree laid out the same way.
        """
        parts = self.path.parts
        if self.root is not None:
            try:
                parts = self.path.relative_to(self.root).parts
            except ValueError:
                pass
        else:
            # No scan root known: drop everything up to a "repro"/"src"
            # component buried in the path (e.g. /repo/src/repro/storage/x.py).
            for anchor in ("repro", "src"):
                if anchor in parts:
                    parts = parts[parts.index(anchor) + 1 :]
        while parts and parts[0] in _ROOT_PARTS:
            parts = parts[1:]
        return parts

    def comment(self, line: int) -> str | None:
        """The comment on ``line`` (1-based), or ``None``."""
        return self.comments.get(line)

    def allowed_rules(self, line: int) -> frozenset[str]:
        """Suppression tokens in scope for a finding on ``line``.

        A ``# repro-lint: allow[RULE]`` directive suppresses matching
        findings when it trails the offending line or sits on the line
        immediately above it.  For findings anchored to a decorated
        ``def``, a directive above the *decorator stack* counts too —
        that is where suppression comments naturally live.  Tokens are
        rule ids or slugs, comma separated, case-insensitive.
        """
        candidates = [line, line - 1]
        first_decorator = self.decorator_starts.get(line)
        if first_decorator is not None:
            candidates.extend((first_decorator, first_decorator - 1))
        tokens: set[str] = set()
        for candidate in candidates:
            comment = self.comments.get(candidate)
            if not comment:
                continue
            match = _ALLOW_RE.search(comment)
            if match:
                tokens.update(
                    part.strip().lower() for part in match.group(1).split(",") if part.strip()
                )
        return frozenset(tokens)


class Checker:
    """Base class for one repro-lint rule.

    Subclasses set :attr:`rule`, :attr:`slug` and :attr:`hint`, override
    :meth:`applies` to scope themselves to the part of the tree their
    invariant covers, and implement :meth:`check`.  :meth:`run` is the
    driver entry point: it applies the scope filter and drops findings
    suppressed with ``# repro-lint: allow[...]`` comments.
    """

    #: Rule id, ``REPRO1xx``.
    rule = "REPRO100"
    #: Human-readable slug used in output and suppression comments.
    slug = "base"
    #: Remediation hint appended to every finding of this rule.
    hint = "see docs/static-analysis.md"

    def applies(self, module: SourceModule) -> bool:
        """Whether this rule covers ``module`` (default: every module)."""
        return True

    def check(self, module: SourceModule) -> list[Finding]:
        """Produce raw findings for ``module`` (before suppression)."""
        raise NotImplementedError

    def run(self, module: SourceModule) -> list[Finding]:
        """Scope-filtered, suppression-filtered findings for ``module``."""
        if not self.applies(module):
            return []
        tokens = {self.rule.lower(), self.slug.lower()}
        return [
            finding
            for finding in self.check(module)
            if not (tokens & module.allowed_rules(finding.line))
        ]

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``node`` in ``module``."""
        return Finding(
            rule=self.rule,
            slug=self.slug,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            message=message,
            hint=self.hint,
        )


class ProjectChecker(Checker):
    """Base class for rules that need a whole-project view.

    Per-module checkers cannot see that a helper's *caller* holds a lock
    or that an exception propagates across modules.  A ``ProjectChecker``
    runs once per lint invocation over the shared
    :class:`~repro.analysis.flow.summaries.ProjectIndex` (modules, call
    graph, interprocedural summaries) instead of once per module.
    Suppression comments still work: each finding is filtered against the
    ``# repro-lint: allow[...]`` directives of the module it anchors to.
    """

    def check(self, module: SourceModule) -> list[Finding]:
        """Project rules produce nothing in the per-module pass."""
        return []

    def check_project(self, index: ProjectIndex) -> list[Finding]:
        """Produce raw findings for the whole project (before suppression)."""
        raise NotImplementedError

    def run_project(self, index: ProjectIndex) -> list[Finding]:
        """Suppression-filtered findings for the whole project."""
        tokens = {self.rule.lower(), self.slug.lower()}
        by_path = {str(module.path): module for module in index.modules}
        kept: list[Finding] = []
        for finding in self.check_project(index):
            module = by_path.get(finding.path)
            if module is not None and (tokens & module.allowed_rules(finding.line)):
                continue
            kept.append(finding)
        return kept
