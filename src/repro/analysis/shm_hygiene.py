"""REPRO106 ``shm-hygiene`` — every ``ShmArena`` has a bounded lifetime.

PR 7's zero-copy transport allocates named POSIX shared-memory
segments; a leaked arena survives the process and fills ``/dev/shm``
until a reboot.  The hygiene suite proves the two blessed lifetime
patterns drain correctly:

* ``with ShmArena(...) as arena:`` — scoped to a block, drained by
  ``__exit__`` even on crash/interrupt,
* a module-level default arena (``_DEFAULT_ARENA = ShmArena()``) — one
  per process, drained by the ``atexit`` hook registered next to it.

Any other construction — an arena stored on ``self``, created inside a
function and returned, passed inline to a call — has no owner with a
guaranteed drain point, so this rule flags it.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, SourceModule, receiver_tail

__all__ = ["ShmHygieneChecker"]


def _is_arena_call(node: ast.AST) -> bool:
    """Whether a node is an ``ShmArena(...)`` construction."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id == "ShmArena"
    return receiver_tail(node.func) == "ShmArena"


class ShmHygieneChecker(Checker):
    """Flag ``ShmArena`` constructions outside the two blessed lifetimes."""

    rule = "REPRO106"
    slug = "shm-hygiene"
    hint = (
        "construct the arena as `with ShmArena(...) as arena:` or as the "
        "module-level default with an atexit drain; unscoped arenas leak "
        "/dev/shm segments past process exit"
    )

    def check(self, module: SourceModule) -> list[Finding]:
        """Collect blessed construction sites, then flag every other one."""
        blessed: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_arena_call(item.context_expr):
                        blessed.add(id(item.context_expr))
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and _is_arena_call(stmt.value):
                blessed.add(id(stmt.value))
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if _is_arena_call(stmt.value):
                    blessed.add(id(stmt.value))
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if _is_arena_call(node) and id(node) not in blessed:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "ShmArena constructed outside a `with` statement and "
                        "not as the module default arena",
                    )
                )
        return findings
