"""REPRO104 ``generation-discipline`` — dataset mutations bump a generation.

Since PR 2 every derived artifact (frame snapshots, prepared-statement
memo entries, open-cursor pages) is validated against a per-dataset
*generation token*; mutating a dataset without bumping the token serves
stale answers with no error.  The two blessed bump helpers are
``HermesEngine._note_append`` (append absorbed in place, caches stay
warm) and ``HermesEngine._invalidate`` (bump plus cache eviction).

This rule scans functions in ``core/`` for the mutation shapes that
change what a dataset contains:

* ``<frame>.extend(...)`` — extending a live ``MODFrame`` in place,
* ``<tree>.append(...)`` — appending into a live ``ReTraTree``,
* assigning into or popping from an ``_datasets`` catalog mapping,
* ``<catalog>.drop(...)`` / ``<catalog>.replace(...)`` on the durable
  catalog.

Receivers are matched by name (a tail identifier of exactly ``frame`` /
``tree`` or ending in ``_frame`` / ``_tree``; ``catalog`` likewise), so
plain list locals like ``trees.append(...)`` do not trip it.  A
function containing any trigger must also *reference* ``_note_append``
or ``_invalidate`` somewhere in its body; one bump covers all triggers
in that function (the engine bumps once per logical mutation, not per
touched structure).
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, SourceModule, receiver_tail

__all__ = ["GenerationChecker"]

_BUMP_HELPERS = frozenset({"_note_append", "_invalidate"})


def _tail_matches(node: ast.AST, stem: str) -> bool:
    """Whether a receiver's tail identifier is ``stem`` or ``*_<stem>``."""
    tail = receiver_tail(node)
    if tail is None:
        return False
    tail = tail.lower().lstrip("_")
    return tail == stem or tail.endswith(f"_{stem}")


def _datasets_rooted(node: ast.AST) -> bool:
    """Whether a chain passes through an ``_datasets`` attribute."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if isinstance(node, ast.Attribute) and node.attr == "_datasets":
            return True
        node = node.value
    return False


class GenerationChecker(Checker):
    """Flag ``core/`` functions that mutate datasets without a bump."""

    rule = "REPRO104"
    slug = "generation-discipline"
    hint = (
        "call `engine._note_append(name)` (in-place absorb) or "
        "`engine._invalidate(name)` (bump + evict) in the same function, "
        "or the mutation serves stale caches silently"
    )

    def applies(self, module: SourceModule) -> bool:
        """Dataset-mutation helpers all live under ``core/``."""
        parts = module.logical_parts
        return bool(parts) and parts[0] == "core"

    def check(self, module: SourceModule) -> list[Finding]:
        """Check every function/method body independently.

        Nested defs are folded into their enclosing function — a helper
        closure's mutation is satisfied by a bump anywhere in the
        enclosing body, matching how the ingest pipeline bumps in a
        ``finally`` that covers its inner workers.
        """
        funcs = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        nested: set[int] = set()
        for func in funcs:
            for child in ast.walk(func):
                if child is not func and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(id(child))
        findings: list[Finding] = []
        for func in funcs:
            if id(func) in nested:
                continue
            triggers = self._triggers(func)
            if triggers and not self._bumps(func):
                findings.extend(
                    self.finding(module, trigger, message) for trigger, message in triggers
                )
        return findings

    @staticmethod
    def _triggers(func: ast.AST) -> list[tuple[ast.AST, str]]:
        triggers: list[tuple[ast.AST, str]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method, receiver = node.func.attr, node.func.value
                if method == "extend" and _tail_matches(receiver, "frame"):
                    triggers.append((node, "in-place frame extend without a generation bump"))
                elif method == "append" and _tail_matches(receiver, "tree"):
                    triggers.append((node, "in-place tree append without a generation bump"))
                elif method in ("drop", "replace") and _tail_matches(receiver, "catalog"):
                    triggers.append(
                        (node, f"catalog {method} without a generation bump")
                    )
                elif method == "pop" and _datasets_rooted(receiver):
                    triggers.append(
                        (node, "dataset catalog pop without a generation bump")
                    )
            elif isinstance(node, ast.Assign):
                if any(_datasets_rooted(target) for target in node.targets):
                    triggers.append(
                        (node, "dataset catalog assignment without a generation bump")
                    )
        return triggers

    @staticmethod
    def _bumps(func: ast.AST) -> bool:
        """Whether the function references a generation-bump helper."""
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and node.attr in _BUMP_HELPERS:
                return True
            if isinstance(node, ast.Name) and node.id in _BUMP_HELPERS:
                return True
        return False
