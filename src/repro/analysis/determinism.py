"""REPRO105 ``determinism`` — no wall clocks or unseeded RNG on answer paths.

The project's strongest regression pin is *bit-identity*: recovery,
sharding, parallel scheduling and the batched kernels all assert their
answers match a serial reference exactly.  That only holds if the
answer-producing packages — ``hermes/``, ``qut/``, ``sql/`` — never
consult a wall clock or an unseeded random stream.

Flagged in those packages:

* ``time.time()`` (``time.perf_counter``/``monotonic`` stay legal:
  measuring duration is fine, *keying behaviour on the date* is not),
* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()``,
* module-level ``random.<fn>()`` calls — the interpreter-global,
  unseeded stream.  Constructing a seeded generator
  (``random.Random(seed)``) is allowed,
* ``np.random.<fn>()`` module-level calls — same reasoning; the seeded
  ``np.random.default_rng(seed)`` / ``RandomState(seed)`` constructors
  are allowed.

``eval/quality.py`` is also in scope: the BENCH_scenarios matrix promises
that every cell reproduces from its recorded seed alone, which only holds
if the harness draws no ambient entropy of its own (``time.perf_counter``
for latency measurement stays legal).  The rest of ``eval/``,
``benchmarks/`` and ``datagen`` are outside the rule's scope: benchmarks
time things and scenario generators own their seeds.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, SourceModule, dotted_name

__all__ = ["DeterminismChecker"]

#: Exact dotted calls that read the wall clock.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

#: Attributes of the module-level RNG that are seeded/configuring rather
#: than drawing from the unseeded global stream.
_SEEDED_RNG_ATTRS = frozenset(
    {"Random", "SystemRandom", "default_rng", "Generator", "RandomState", "seed"}
)


class DeterminismChecker(Checker):
    """Flag wall-clock reads and unseeded RNG draws on bit-identity paths."""

    rule = "REPRO105"
    slug = "determinism"
    hint = (
        "thread an explicit seed (`random.Random(seed)` / "
        "`np.random.default_rng(seed)`) or take the timestamp as a parameter; "
        "bit-identity pins cannot hold against ambient entropy"
    )

    def applies(self, module: SourceModule) -> bool:
        """The answer-producing packages, plus the seed-pinned quality harness."""
        parts = module.logical_parts
        if not parts:
            return False
        # eval/quality.py promises exact re-runs from recorded seeds.
        if parts == ("eval", "quality.py"):
            return True
        return parts[0] in ("hermes", "qut", "sql")

    def check(self, module: SourceModule) -> list[Finding]:
        """Walk calls; flag the clock/RNG shapes documented above."""
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            qual = dotted_name(node.func)
            if qual is None:
                continue
            if qual in _CLOCK_CALLS:
                findings.append(
                    self.finding(
                        module, node, f"`{qual}()` reads the wall clock on an answer path"
                    )
                )
                continue
            root, _, attr = qual.rpartition(".")
            if root in ("random", "np.random", "numpy.random") and attr not in _SEEDED_RNG_ATTRS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{qual}()` draws from the unseeded module-level RNG",
                    )
                )
        return findings
