"""Flow-sensitive analysis core for the ``repro-lint`` checker suite.

PR 8's checkers are syntactic and per-function: they can see that a
statement mutates a guarded attribute, but not that the mutation sits on
a path where the lock is provably held, nor that a helper's caller holds
it.  This package adds the three pieces that make *flow-sensitive* and
*interprocedural* rules possible while staying stdlib-only:

* :mod:`repro.analysis.flow.cfg` — a per-function control-flow graph
  built from :mod:`ast`, with synthetic enter/exit markers for ``with``
  blocks and a generic forward worklist solver,
* :mod:`repro.analysis.flow.lockset` — the intraprocedural lock-set
  dataflow (which locks are *must*-held at every statement),
* :mod:`repro.analysis.flow.callgraph` — a project-wide call graph with
  deliberately modest resolution (``self`` methods, module functions,
  project imports; everything else degrades to :data:`~repro.analysis.flow.callgraph.TOP`),
* :mod:`repro.analysis.flow.summaries` — bounded interprocedural
  summaries on top of the call graph: lock obligations that escape a
  function (REPRO110) and exception types that escape it (REPRO111).

The rules built on this core are
:class:`~repro.analysis.race.RaceChecker` (REPRO110),
:class:`~repro.analysis.exception_contracts.ExceptionContractChecker`
(REPRO111) and :class:`~repro.analysis.durability.DurabilityChecker`
(REPRO112); see ``docs/static-analysis.md`` for the rule reference and
the design notes.
"""

from repro.analysis.flow.callgraph import TOP, CallGraph, FunctionInfo
from repro.analysis.flow.cfg import CFG, Block, WithEnter, WithExit, build_cfg
from repro.analysis.flow.lockset import locks_at_steps
from repro.analysis.flow.summaries import LockObligation, ProjectIndex

__all__ = [
    "CFG",
    "Block",
    "CallGraph",
    "FunctionInfo",
    "LockObligation",
    "ProjectIndex",
    "TOP",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "locks_at_steps",
]
