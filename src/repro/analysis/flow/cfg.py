"""Per-function control-flow graphs over :mod:`ast`, plus a forward solver.

The CFG is the substrate every flow-sensitive rule shares: basic blocks
of *steps* connected by directed edges.  A step is one of

* a simple :class:`ast.stmt` (assignment, expression statement, return,
  raise, nested ``def``, ...),
* an :class:`ast.expr` — the test of an ``if``/``while`` or the iterable
  of a ``for``, evaluated before the branch,
* a synthetic :class:`WithEnter` / :class:`WithExit` marker for each
  ``with`` item, so lock acquisition and release become explicit events
  on the path.

Construction handles ``if``/``for``/``while`` (with ``else`` arms),
``try``/``except``/``else``/``finally``, ``with``, ``break``/``continue``
and early ``return``/``raise``.  Exits are split: :attr:`CFG.exit_id`
collects normal completion (fall-through and ``return``),
:attr:`CFG.raise_id` collects explicit ``raise`` paths, so rules that
only constrain normal completion (durability ordering) can tell the two
apart.  When control leaves one or more ``with`` blocks early (``return``
/ ``raise`` / ``break`` / ``continue``), the matching :class:`WithExit`
markers are emitted on the edge, so a lock never appears held on a path
that escaped its ``with``.

Deliberate approximations, documented for rule authors: implicit
exceptions (any call can raise) are not modelled as edges — only
explicit ``raise`` statements and the try-entry edge into each handler
are; nested function bodies are *steps*, not sub-graphs (the checkers
decide whether to inline them).  Both keep the graph small and the
findings anchored to code the author wrote.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, TypeVar, Union

__all__ = [
    "CFG",
    "Block",
    "Step",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "solve_forward",
    "walk_expressions",
]


@dataclass(frozen=True)
class WithEnter:
    """Synthetic step marking entry into one ``with`` item."""

    context_expr: ast.expr
    line: int


@dataclass(frozen=True)
class WithExit:
    """Synthetic step marking exit from one ``with`` item."""

    context_expr: ast.expr
    line: int


#: One unit of work inside a basic block.
Step = Union[ast.stmt, ast.expr, WithEnter, WithExit]


@dataclass
class Block:
    """A basic block: a straight-line run of steps plus successor edges."""

    id: int
    steps: list[Step] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def add_edge(self, target: int) -> None:
        """Add an edge to ``target`` (idempotent, order-preserving)."""
        if target not in self.succs:
            self.succs.append(target)


class CFG:
    """A function's control-flow graph.

    Attributes
    ----------
    blocks:
        Every block, indexed by :attr:`Block.id`.
    entry_id:
        The block control enters at.
    exit_id:
        The synthetic normal-completion block (fall-through, ``return``).
    raise_id:
        The synthetic abnormal-completion block (explicit ``raise`` that
        no handler in the function catches).
    """

    def __init__(self, blocks: list[Block], entry_id: int, exit_id: int, raise_id: int) -> None:
        self.blocks = blocks
        self.entry_id = entry_id
        self.exit_id = exit_id
        self.raise_id = raise_id

    def block(self, block_id: int) -> Block:
        """The block with id ``block_id``."""
        return self.blocks[block_id]

    def predecessors(self, block_id: int) -> list[int]:
        """Ids of blocks with an edge into ``block_id``."""
        return [b.id for b in self.blocks if block_id in b.succs]

    def reachable(self) -> set[int]:
        """Ids of blocks reachable from the entry block."""
        seen: set[int] = set()
        stack = [self.entry_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blocks[current].succs)
        return seen


class _LoopFrame:
    """Targets for ``break``/``continue`` plus the with-depth at loop entry."""

    def __init__(self, break_target: int, continue_target: int, with_depth: int) -> None:
        self.break_target = break_target
        self.continue_target = continue_target
        self.with_depth = with_depth


class _Builder:
    """Recursive-descent CFG construction (one instance per function)."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.exit_id = self._new_block().id
        self.raise_id = self._new_block().id
        self.entry_id = self._new_block().id
        self.current = self.entry_id
        # Innermost-last stacks: enclosing loops, active with items, and
        # exception targets as (handler-entry ids, with-depth when the try
        # was entered).
        self.loops: list[_LoopFrame] = []
        self.withs: list[WithEnter] = []
        self.handlers: list[tuple[list[int], int]] = []

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _add(self, step: Step) -> None:
        self.blocks[self.current].steps.append(step)

    def _edge(self, target: int) -> None:
        self.blocks[self.current].add_edge(target)

    def _start(self, block_id: int) -> None:
        self.current = block_id

    def _escape(self, target: int, down_to_depth: int) -> None:
        """Jump to ``target``, emitting WithExit steps for escaped withs."""
        for entered in reversed(self.withs[down_to_depth:]):
            self._add(WithExit(entered.context_expr, entered.line))
        self._edge(target)
        # Continue into a fresh unreachable block: anything after a jump is
        # dead code but must still parse into the graph.
        self._start(self._new_block().id)

    def _raise_targets(self) -> tuple[list[int], int]:
        if self.handlers:
            return self.handlers[-1]
        return [self.raise_id], 0

    # -- statement dispatch ------------------------------------------------------

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        """Construct the CFG for ``func``'s body."""
        self._stmts(func.body)
        self._edge(self.exit_id)
        return CFG(self.blocks, self.entry_id, self.exit_id, self.raise_id)

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Return):
            self._add(stmt)
            self._escape(self.exit_id, 0)
        elif isinstance(stmt, ast.Raise):
            self._add(stmt)
            targets, depth = self._raise_targets()
            for entered in reversed(self.withs[depth:]):
                self._add(WithExit(entered.context_expr, entered.line))
            for target in targets:
                self._edge(target)
            self._start(self._new_block().id)
        elif isinstance(stmt, ast.Break):
            if self.loops:
                frame = self.loops[-1]
                self._add(stmt)
                self._escape(frame.break_target, frame.with_depth)
            else:  # pragma: no cover - break outside loop is a SyntaxError
                self._add(stmt)
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                frame = self.loops[-1]
                self._add(stmt)
                self._escape(frame.continue_target, frame.with_depth)
            else:  # pragma: no cover - continue outside loop is a SyntaxError
                self._add(stmt)
        else:
            # Simple statements — including nested FunctionDef/ClassDef,
            # which are definitions (steps), not control flow.
            self._add(stmt)

    def _if(self, stmt: ast.If) -> None:
        self._add(stmt.test)
        branch_from = self.current
        join = self._new_block()

        then = self._new_block()
        self.blocks[branch_from].add_edge(then.id)
        self._start(then.id)
        self._stmts(stmt.body)
        self._edge(join.id)

        if stmt.orelse:
            other = self._new_block()
            self.blocks[branch_from].add_edge(other.id)
            self._start(other.id)
            self._stmts(stmt.orelse)
            self._edge(join.id)
        else:
            self.blocks[branch_from].add_edge(join.id)
        self._start(join.id)

    def _while(self, stmt: ast.While) -> None:
        header = self._new_block()
        self._edge(header.id)
        self._start(header.id)
        self._add(stmt.test)

        after = self._new_block()
        body = self._new_block()
        self.blocks[header.id].add_edge(body.id)

        self.loops.append(_LoopFrame(after.id, header.id, len(self.withs)))
        self._start(body.id)
        self._stmts(stmt.body)
        self._edge(header.id)
        self.loops.pop()

        if stmt.orelse:
            orelse = self._new_block()
            self.blocks[header.id].add_edge(orelse.id)
            self._start(orelse.id)
            self._stmts(stmt.orelse)
            self._edge(after.id)
        else:
            self.blocks[header.id].add_edge(after.id)
        self._start(after.id)

    def _for(self, stmt: ast.For | ast.AsyncFor) -> None:
        self._add(stmt.iter)
        header = self._new_block()
        self._edge(header.id)
        self._start(header.id)
        # The target binding happens once per iteration, at the header.
        self._add(stmt.target)

        after = self._new_block()
        body = self._new_block()
        self.blocks[header.id].add_edge(body.id)

        self.loops.append(_LoopFrame(after.id, header.id, len(self.withs)))
        self._start(body.id)
        self._stmts(stmt.body)
        self._edge(header.id)
        self.loops.pop()

        if stmt.orelse:
            orelse = self._new_block()
            self.blocks[header.id].add_edge(orelse.id)
            self._start(orelse.id)
            self._stmts(stmt.orelse)
            self._edge(after.id)
        else:
            self.blocks[header.id].add_edge(after.id)
        self._start(after.id)

    def _with(self, stmt: ast.With | ast.AsyncWith) -> None:
        enters = [
            WithEnter(item.context_expr, getattr(item.context_expr, "lineno", stmt.lineno))
            for item in stmt.items
        ]
        for enter in enters:
            self._add(enter)
            self.withs.append(enter)
        self._stmts(stmt.body)
        for enter in reversed(enters):
            self.withs.pop()
            self._add(WithExit(enter.context_expr, enter.line))

    def _try(self, stmt: ast.Try) -> None:
        after = self._new_block()

        # Handler entry blocks exist before the body is built so explicit
        # raises inside the body can target them.
        handler_entries: list[int] = [self._new_block().id for _ in stmt.handlers]

        body = self._new_block()
        self._edge(body.id)
        # Any step of the body may raise; the graph models the coarse
        # version of that: an edge from the try entry into each handler.
        for entry in handler_entries:
            self.blocks[body.id].add_edge(entry)
        if stmt.handlers:
            self.handlers.append((handler_entries, len(self.withs)))
        self._start(body.id)
        self._stmts(stmt.body)
        if stmt.handlers:
            self.handlers.pop()
        # Normal body completion runs the else arm (outside handler scope).
        if stmt.orelse:
            self._stmts(stmt.orelse)

        finally_entry: int | None = None
        if stmt.finalbody:
            fin = self._new_block()
            finally_entry = fin.id
            self._edge(fin.id)
            self._start(fin.id)
            self._stmts(stmt.finalbody)
            self._edge(after.id)
        else:
            self._edge(after.id)

        for handler, entry in zip(stmt.handlers, handler_entries):
            self._start(entry)
            self._stmts(handler.body)
            if finally_entry is not None:
                self._edge(finally_entry)
            else:
                self._edge(after.id)
        self._start(after.id)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder().build(func)


T = TypeVar("T")


def solve_forward(
    cfg: CFG,
    entry_state: T,
    transfer: Callable[[Step, T], T],
    meet: Callable[[T, T], T],
) -> dict[int, T]:
    """Forward dataflow fixpoint: block id → state at block *entry*.

    Classic worklist iteration: the state entering a block is the
    ``meet`` over its predecessors' exit states (exit = ``transfer``
    folded over the block's steps), seeded with ``entry_state`` at the
    CFG entry.  Only blocks reachable from the entry participate.
    ``transfer`` must be deterministic and ``meet`` associative,
    commutative and idempotent — the usual lattice contract; with a
    finite state space the iteration terminates.
    """
    reachable = cfg.reachable()
    states: dict[int, T] = {cfg.entry_id: entry_state}
    worklist = [cfg.entry_id]
    while worklist:
        block_id = worklist.pop(0)
        state = states[block_id]
        for step in cfg.block(block_id).steps:
            state = transfer(step, state)
        for succ in cfg.block(block_id).succs:
            if succ not in reachable:  # pragma: no cover - succs are reachable
                continue
            merged = state if succ not in states else meet(states[succ], state)
            if succ not in states or merged != states[succ]:
                states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    return states


def walk_expressions(node: ast.AST) -> list[ast.AST]:
    """Every descendant of ``node``, pruning nested function/lambda bodies.

    The checkers use this when collecting events that happen *when the
    statement executes*: a nested ``def`` or ``lambda`` body runs at some
    later call, under a possibly different lock-set, so its contents must
    not be attributed to the defining statement.
    """
    found: list[ast.AST] = []
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        found.append(current)
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return found
