"""Intraprocedural lock-set dataflow: which locks are *must*-held where.

The transfer function is driven by the CFG's synthetic
:class:`~repro.analysis.flow.cfg.WithEnter` /
:class:`~repro.analysis.flow.cfg.WithExit` steps: entering
``with self.<lock>:`` adds ``<lock>`` to the set, leaving it removes it.
The merge at control-flow joins is set *intersection* — a lock counts as
held at a statement only when every path reaching the statement holds it,
which is exactly the guarantee a race checker needs (a may-analysis
would bless mutations that are unlocked on one arm of an ``if``).

Lock identity is the attribute name of a ``self``-rooted context
expression (``with self._catalog_lock:`` → ``"_catalog_lock"``); any
other context manager (files, arenas, ``contextlib`` helpers) acquires
nothing and is ignored.  Non-``with`` acquisition (``lock.acquire()`` /
``lock.release()``) is deliberately out of scope: the codebase's locking
convention is ``with``-only, and REPRO102/REPRO110 both exist to keep it
that way.
"""

from __future__ import annotations

import ast

from repro.analysis.flow.cfg import CFG, Step, WithEnter, WithExit, solve_forward

__all__ = ["lock_name", "locks_at_steps"]


def lock_name(context_expr: ast.expr) -> str | None:
    """``with self.<attr>:`` → ``"<attr>"``; anything else → ``None``."""
    if (
        isinstance(context_expr, ast.Attribute)
        and isinstance(context_expr.value, ast.Name)
        and context_expr.value.id == "self"
    ):
        return context_expr.attr
    return None


def _transfer(step: Step, held: frozenset[str]) -> frozenset[str]:
    if isinstance(step, WithEnter):
        name = lock_name(step.context_expr)
        if name is not None:
            return held | {name}
    elif isinstance(step, WithExit):
        name = lock_name(step.context_expr)
        if name is not None:
            return held - {name}
    return held


def locks_at_steps(
    cfg: CFG, entry_locks: frozenset[str] = frozenset()
) -> list[tuple[Step, frozenset[str]]]:
    """Every reachable step paired with the locks must-held *before* it.

    ``entry_locks`` seeds the set at function entry (a ``# holds:``
    contract).  Steps are listed in block order; unreachable blocks
    (code after an unconditional jump) are skipped — nothing executes
    there, so nothing needs a lock.
    """
    entries = solve_forward(
        cfg,
        entry_locks,
        _transfer,
        lambda a, b: a & b,
    )
    result: list[tuple[Step, frozenset[str]]] = []
    for block_id in sorted(entries):
        state = entries[block_id]
        for step in cfg.block(block_id).steps:
            result.append((step, state))
            state = _transfer(step, state)
    return result
