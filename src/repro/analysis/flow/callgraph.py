"""Project-wide call graph with deliberately modest, honest resolution.

The graph indexes every function and method in the scanned modules under
a stable qualified name (``"core/engine.py::HermesEngine.frame"``) and
resolves call expressions to those names.  Resolution covers exactly the
shapes the codebase's conventions produce:

* ``self.helper(...)`` → a method of the caller's own class,
* ``helper(...)`` → a module-level function of the caller's module, or a
  project function imported via ``from repro.x.y import helper [as h]``,
* ``ClassName(...)`` → ``ClassName.__init__`` when ``ClassName`` is a
  project class (defined locally or project-imported),
* ``ClassName.method(...)`` → the unbound method, same resolution,
* ``alias.helper(...)`` → via ``import repro.x.y as alias``.

Everything else — attribute calls on arbitrary receivers, builtins,
third-party callables, calls through variables — resolves to the
sentinel :data:`TOP`: *unknown callee, assume nothing*.  Interprocedural
rules must treat TOP as contributing no facts (and say so in their
documentation); pretending to resolve dynamic dispatch would manufacture
false positives, which is fatal for a CI-gating linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.base import SourceModule, dotted_name

__all__ = ["TOP", "CallGraph", "FunctionInfo"]


class _Top:
    """Singleton marker for an unresolvable callee."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<top>"


#: The unknown-callee sentinel: resolution found no project target.
TOP = _Top()


@dataclass
class FunctionInfo:
    """One function or method in the scanned project.

    ``qualname`` is ``"<logical path>::<Class.>name"`` — stable across
    scan roots because it is built from
    :attr:`~repro.analysis.base.SourceModule.logical_parts`.
    """

    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_node: ast.ClassDef | None = None

    @property
    def name(self) -> str:
        """The bare function name (``frame``)."""
        return self.node.name

    @property
    def is_public(self) -> bool:
        """Whether the name is part of its owner's public surface."""
        return not self.node.name.startswith("_")


@dataclass
class _ModuleScope:
    """Name-resolution scope of one module: imports plus local defs."""

    #: Local name → dotted project module (``"repro.storage.catalog"``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: Local name → (dotted module, remote name) for ``from`` imports.
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: Module-level function name → qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: Module-level class name → class node.
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)


def _logical_dotted(module: SourceModule) -> str:
    """A module's project-dotted name (``"repro.storage.catalog"``)."""
    parts = list(module.logical_parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts])


class CallGraph:
    """Functions, classes and call-edge resolution over scanned modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._scopes: dict[str, _ModuleScope] = {}
        self._dotted_to_logical: dict[str, str] = {}
        self._modules: dict[str, SourceModule] = {}
        #: Dotted module name → {class name → class node}.
        self.classes: dict[str, dict[str, ast.ClassDef]] = {}

    @classmethod
    def build(cls, modules: list[SourceModule]) -> "CallGraph":
        """Index every function, class and import in ``modules``."""
        graph = cls()
        for module in modules:
            graph._index_module(module)
        return graph

    # -- indexing ----------------------------------------------------------------

    @staticmethod
    def _module_key(module: SourceModule) -> str:
        return "/".join(module.logical_parts)

    def _index_module(self, module: SourceModule) -> None:
        key = self._module_key(module)
        dotted = _logical_dotted(module)
        scope = _ModuleScope()
        self._scopes[key] = scope
        self._dotted_to_logical[dotted] = key
        self._modules[key] = module
        self.classes[dotted] = scope.classes

        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    scope.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    scope.imported_names[alias.asname or alias.name] = (
                        stmt.module,
                        alias.name,
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{key}::{stmt.name}"
                scope.functions[stmt.name] = qualname
                self.functions[qualname] = FunctionInfo(qualname, module, stmt)
            elif isinstance(stmt, ast.ClassDef):
                scope.classes[stmt.name] = stmt
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{key}::{stmt.name}.{item.name}"
                        self.functions[qualname] = FunctionInfo(
                            qualname, module, item, class_node=stmt
                        )

    # -- resolution --------------------------------------------------------------

    def methods_of(self, caller: FunctionInfo) -> dict[str, str]:
        """Method name → qualname for the caller's own class (if any)."""
        if caller.class_node is None:
            return {}
        key = self._module_key(caller.module)
        prefix = f"{key}::{caller.class_node.name}."
        return {
            info.name: qualname
            for qualname, info in self.functions.items()
            if qualname.startswith(prefix)
        }

    def _resolve_project_name(
        self, scope: _ModuleScope, key: str, name: str
    ) -> str | ast.ClassDef | _Top:
        """A bare name in module scope → qualname, class node or TOP."""
        if name in scope.functions:
            return scope.functions[name]
        if name in scope.classes:
            return scope.classes[name]
        if name in scope.imported_names:
            dotted, remote = scope.imported_names[name]
            target_key = self._dotted_to_logical.get(dotted)
            if target_key is None:
                return TOP
            target_scope = self._scopes[target_key]
            if remote in target_scope.functions:
                return target_scope.functions[remote]
            if remote in target_scope.classes:
                return target_scope.classes[remote]
        return TOP

    def _class_qualname(self, cls_node: ast.ClassDef) -> str | None:
        for dotted, classes in self.classes.items():
            if classes.get(cls_node.name) is cls_node:
                key = self._dotted_to_logical[dotted]
                return f"{key}::{cls_node.name}"
        return None  # pragma: no cover - indexed classes always resolve

    def _method_on_class(self, cls_node: ast.ClassDef, method: str) -> str | _Top:
        prefix = self._class_qualname(cls_node)
        if prefix is None:  # pragma: no cover - indexed classes always resolve
            return TOP
        qualname = f"{prefix}.{method}"
        return qualname if qualname in self.functions else TOP

    def class_by_id(self, class_id: str) -> tuple[SourceModule, ast.ClassDef] | None:
        """``"storage/errors.py::Name"`` → its module and class node."""
        key, _, name = class_id.rpartition("::")
        module = self._modules.get(key)
        scope = self._scopes.get(key)
        if module is None or scope is None:
            return None
        cls = scope.classes.get(name)
        return (module, cls) if cls is not None else None

    def resolve_class(
        self, module: SourceModule, expr: ast.expr
    ) -> tuple[SourceModule, ast.ClassDef] | str | None:
        """Resolve a class-valued expression (an exception type, usually).

        Returns the defining ``(module, class node)`` for project
        classes, the bare name for names that resolve to nothing in the
        project (builtin candidates — the caller decides whether the
        builtin is meaningful), or ``None`` for dynamic expressions.
        """
        key = self._module_key(module)
        scope = self._scopes.get(key)
        if scope is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in scope.classes:
                return (module, scope.classes[expr.id])
            if expr.id in scope.imported_names:
                dotted, remote = scope.imported_names[expr.id]
                target_key = self._dotted_to_logical.get(dotted)
                if target_key is not None:
                    target = self._scopes[target_key].classes.get(remote)
                    if target is not None:
                        return (self._modules[target_key], target)
                return None
            if expr.id in scope.functions:
                return None
            return expr.id
        if isinstance(expr, ast.Attribute):
            qual = dotted_name(expr.value)
            if qual is not None:
                dotted = scope.module_aliases.get(qual, qual)
                target_key = self._dotted_to_logical.get(dotted)
                if target_key is not None:
                    target = self._scopes[target_key].classes.get(expr.attr)
                    if target is not None:
                        return (self._modules[target_key], target)
        return None

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> list[str] | _Top:
        """Project target qualnames of ``call``, or :data:`TOP`.

        A resolved class is treated as a constructor call (its
        ``__init__``, when defined).  A list is returned for uniformity;
        current resolution yields at most one target.
        """
        key = self._module_key(caller.module)
        scope = self._scopes[key]
        func = call.func

        if isinstance(func, ast.Name):
            resolved = self._resolve_project_name(scope, key, func.id)
            if isinstance(resolved, str):
                return [resolved]
            if isinstance(resolved, ast.ClassDef):
                init = self._method_on_class(resolved, "__init__")
                return [init] if isinstance(init, str) else []
            return TOP

        if isinstance(func, ast.Attribute):
            # self.helper(...) — a method of the caller's own class.
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                target = self.methods_of(caller).get(func.attr)
                return [target] if target is not None else TOP
            # ClassName.method(...) / alias.func(...) via the module scope.
            if isinstance(func.value, ast.Name):
                base = self._resolve_project_name(scope, key, func.value.id)
                if isinstance(base, ast.ClassDef):
                    method = self._method_on_class(base, func.attr)
                    return [method] if isinstance(method, str) else TOP
            # import repro.x.y as alias; alias.func(...) — or the full
            # dotted form repro.x.y.func(...).
            qual = dotted_name(func.value)
            if qual is not None:
                dotted = scope.module_aliases.get(qual, qual)
                target_key = self._dotted_to_logical.get(dotted)
                if target_key is not None:
                    target_scope = self._scopes[target_key]
                    if func.attr in target_scope.functions:
                        return [target_scope.functions[func.attr]]
            return TOP

        return TOP
