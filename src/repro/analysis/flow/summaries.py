"""Bounded interprocedural summaries: lock obligations and escaping raises.

A *summary* condenses what a function does to a fact its callers can
consume without re-analysing the body.  Two summary domains live here,
both computed as bounded fixpoints over the
:class:`~repro.analysis.flow.callgraph.CallGraph`:

* **Lock obligations** (REPRO110).  An obligation is one access to a
  ``# guarded-by:`` attribute that the function does not protect itself
  — the lock is not in the must-held set at the access.  Obligations
  propagate caller-ward: a call site that holds the required lock
  *discharges* the callee's obligation; one that does not re-exports it.
  Whatever reaches a public entry point unprotected is a race finding.

* **Escaping raises** (REPRO111).  The set of exception types a
  function can let escape: its own ``raise`` sites minus the types its
  enclosing ``try`` blocks catch, plus its callees' escaping sets
  filtered the same way at each call site.

Both fixpoints are *bounded* (:data:`FIXPOINT_BOUND` rounds): facts
propagate at most that many call-graph edges deep per round and the sets
only grow, so the iteration terminates early on real code and degrades
to an under-approximation — never a spurious finding — on pathological
call cycles.  Unknown callees
(:data:`~repro.analysis.flow.callgraph.TOP`) contribute no facts, by the
same no-false-positives principle.

:class:`ProjectIndex` is the façade the checkers share: one instance per
lint run indexes the modules, builds the call graph, caches per-function
CFG/lock-set results and serves both summary tables.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field

from repro.analysis.base import SourceModule
from repro.analysis.flow.callgraph import TOP, CallGraph, FunctionInfo
from repro.analysis.flow.cfg import Step, WithEnter, WithExit, build_cfg, walk_expressions
from repro.analysis.flow.lockset import locks_at_steps

__all__ = ["FIXPOINT_BOUND", "EscapingRaise", "LockObligation", "ProjectIndex"]

#: Maximum fixpoint rounds for either summary domain.  Real call chains
#: in this codebase are 3-4 frames deep; the bound only exists so a
#: pathological cycle cannot stall the linter.
FIXPOINT_BOUND = 12


@dataclass(frozen=True)
class LockObligation:
    """One unprotected access to a guarded attribute.

    ``path``/``line`` anchor the access site; ``via`` names the function
    the access lives in (where the fix usually belongs); ``kind`` is
    ``"write"`` or ``"read"`` for the diagnostic text.
    """

    attr: str
    lock: str
    path: str
    line: int
    via: str
    kind: str


@dataclass(frozen=True)
class EscapingRaise:
    """One exception type escaping a function, with its origin site."""

    type_id: str
    display: str
    path: str
    line: int
    origin: str


@dataclass
class _FunctionFacts:
    """Intraprocedural facts of one function, cached by :class:`ProjectIndex`."""

    #: Unprotected guarded-attribute accesses (the function's own).
    unprotected: list[LockObligation] = field(default_factory=list)
    #: ``(resolved targets, locks held at the call)`` per project call.
    calls: list[tuple[tuple[str, ...], frozenset[str]]] = field(default_factory=list)


def _guarded_self_attr(node: ast.AST, guarded: dict[str, str]) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in guarded
    ):
        return node.attr
    return None


def _self_attr_reads_writes(
    step_node: ast.AST, guarded: dict[str, str]
) -> list[tuple[str, str, int, str]]:
    """``(attr, lock, line, kind)`` for guarded ``self.<attr>`` touches."""
    from repro.analysis.lock_discipline import _MUTATING_METHODS

    # Sites that observably *write*: plain store/del contexts, subscript
    # stores, and receivers of in-place mutating method calls.  The
    # distinction is purely for diagnostic wording — both kinds race.
    writes: set[tuple[str, int]] = set()
    for node in walk_expressions(step_node):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            attr = _guarded_self_attr(node.value, guarded)
            if attr is not None:
                writes.add((attr, node.value.lineno))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                attr = _guarded_self_attr(node.func.value, guarded)
                if attr is not None:
                    writes.add((attr, node.func.value.lineno))
    touches: list[tuple[str, str, int, str]] = []
    for node in walk_expressions(step_node):
        attr = _guarded_self_attr(node, guarded)
        if attr is not None:
            if isinstance(node.ctx, (ast.Store, ast.Del)) or (attr, node.lineno) in writes:  # type: ignore[attr-defined]
                kind = "write"
            else:
                kind = "read"
            touches.append((attr, guarded[attr], node.lineno, kind))
    return touches


def _step_ast_nodes(step: Step) -> list[ast.AST]:
    """The AST payload of a step (empty for ``WithExit`` markers)."""
    if isinstance(step, WithEnter):
        return [step.context_expr]
    if isinstance(step, WithExit):
        return []
    return [step]


class ProjectIndex:
    """Shared per-run index: modules, call graph, facts and summaries."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.graph = CallGraph.build(modules)
        self._facts: dict[str, _FunctionFacts] | None = None
        self._lock_summaries: dict[str, frozenset[LockObligation]] | None = None
        self._raise_summaries: dict[str, frozenset[EscapingRaise]] | None = None
        #: Exception-class ancestry: type id → ids of all (transitive) bases.
        self._ancestors: dict[str, frozenset[str]] = {}

    # -- guarded declarations ---------------------------------------------------

    def guarded_attrs(self, info: FunctionInfo) -> dict[str, str]:
        """Guarded attribute → lock for the class owning ``info`` (if any)."""
        if info.class_node is None:
            return {}
        from repro.analysis.lock_discipline import guarded_attributes

        return guarded_attributes(info.module, info.class_node)

    def declared_holds(self, info: FunctionInfo) -> frozenset[str]:
        """The ``# holds:`` contract on ``info``'s ``def`` line, if any."""
        from repro.analysis.lock_discipline import declared_holds

        return declared_holds(info.module, info.node)

    # -- intraprocedural facts ---------------------------------------------------

    def _function_facts(self) -> dict[str, _FunctionFacts]:
        if self._facts is not None:
            return self._facts
        facts: dict[str, _FunctionFacts] = {}
        for qualname, info in self.graph.functions.items():
            facts[qualname] = self._compute_facts(qualname, info)
        self._facts = facts
        return facts

    def _compute_facts(self, qualname: str, info: FunctionInfo) -> _FunctionFacts:
        facts = _FunctionFacts()
        guarded = self.guarded_attrs(info)
        if info.name == "__init__":
            # No concurrent access before construction completes; __init__
            # still propagates its callees' obligations via `calls`.
            guarded = {}
        cfg = build_cfg(info.node)
        for step, held in locks_at_steps(cfg):
            for node in _step_ast_nodes(step):
                if guarded:
                    for attr, lock, line, kind in _self_attr_reads_writes(node, guarded):
                        if lock not in held:
                            facts.unprotected.append(
                                LockObligation(
                                    attr=attr,
                                    lock=lock,
                                    path=str(info.module.path),
                                    line=line,
                                    via=qualname,
                                    kind=kind,
                                )
                            )
                for child in walk_expressions(node):
                    if isinstance(child, ast.Call):
                        targets = self.graph.resolve_call(info, child)
                        if targets is TOP or not targets:
                            continue
                        facts.calls.append((tuple(targets), held))  # type: ignore[arg-type]
        return facts

    # -- lock-obligation summaries ----------------------------------------------

    def lock_obligations(self) -> dict[str, frozenset[LockObligation]]:
        """Function qualname → obligations escaping it (bounded fixpoint)."""
        if self._lock_summaries is not None:
            return self._lock_summaries
        facts = self._function_facts()
        summaries: dict[str, set[LockObligation]] = {
            qualname: set(f.unprotected) for qualname, f in facts.items()
        }
        for _ in range(FIXPOINT_BOUND):
            changed = False
            for qualname, f in facts.items():
                inherited: set[LockObligation] = set()
                for targets, held in f.calls:
                    for target in targets:
                        for obligation in summaries.get(target, ()):
                            if obligation.lock not in held:
                                inherited.add(obligation)
                if not inherited <= summaries[qualname]:
                    summaries[qualname] |= inherited
                    changed = True
            if not changed:
                break
        self._lock_summaries = {q: frozenset(s) for q, s in summaries.items()}
        return self._lock_summaries

    # -- exception-type resolution ----------------------------------------------

    def _builtin_exception(self, name: str) -> bool:
        candidate = getattr(builtins, name, None)
        return isinstance(candidate, type) and issubclass(candidate, BaseException)

    def _class_id(self, module: SourceModule, cls: ast.ClassDef) -> str:
        return f"{'/'.join(module.logical_parts)}::{cls.name}"

    def resolve_exception_type(self, module: SourceModule, expr: ast.expr) -> str | None:
        """An exception expression → type id, or ``None`` when dynamic.

        Type ids are builtin names (``"RuntimeError"``) or project class
        ids (``"storage/errors.py::StorageError"``).  Accepts the raised
        expression directly or a ``Call`` constructing it.
        """
        if isinstance(expr, ast.Call):
            expr = expr.func
        resolved = self.graph.resolve_class(module, expr)
        if isinstance(resolved, tuple):
            owner, cls = resolved
            return self._class_id(owner, cls)
        if isinstance(resolved, str):
            return resolved if self._builtin_exception(resolved) else None
        return None

    def exception_ancestors(self, type_id: str) -> frozenset[str]:
        """All base-type ids of ``type_id``, itself included."""
        cached = self._ancestors.get(type_id)
        if cached is not None:
            return cached
        self._ancestors[type_id] = frozenset({type_id})  # cycle guard
        ancestors = {type_id}
        if "::" in type_id:
            located = self.graph.class_by_id(type_id)
            if located is not None:
                module, cls = located
                for base in cls.bases:
                    base_id = self.resolve_exception_type(module, base)
                    if base_id is not None:
                        ancestors |= self.exception_ancestors(base_id)
        else:
            candidate = getattr(builtins, type_id, None)
            if isinstance(candidate, type):
                ancestors |= {
                    base.__name__
                    for base in candidate.__mro__
                    if issubclass(base, BaseException)
                }
        result = frozenset(ancestors)
        self._ancestors[type_id] = result
        return result

    def is_exception_subtype(self, type_id: str, catch_id: str) -> bool:
        """Whether ``type_id`` is caught by ``except <catch_id>``."""
        return catch_id in self.exception_ancestors(type_id)

    # -- escaping-raise summaries -------------------------------------------------

    def escaping_raises(self) -> dict[str, frozenset[EscapingRaise]]:
        """Function qualname → exception types it can let escape."""
        if self._raise_summaries is not None:
            return self._raise_summaries
        collectors = {
            qualname: _RaiseCollector(self, info)
            for qualname, info in self.graph.functions.items()
        }
        summaries: dict[str, frozenset[EscapingRaise]] = {
            qualname: frozenset(c.own) for qualname, c in collectors.items()
        }
        for _ in range(FIXPOINT_BOUND):
            changed = False
            for qualname, collector in collectors.items():
                inherited: set[EscapingRaise] = set(summaries[qualname])
                for target, catchers in collector.calls:
                    for escaped in summaries.get(target, ()):
                        if not _caught(self, escaped.type_id, catchers):
                            inherited.add(escaped)
                frozen = frozenset(inherited)
                if frozen != summaries[qualname]:
                    summaries[qualname] = frozen
                    changed = True
            if not changed:
                break
        self._raise_summaries = summaries
        return summaries


#: A catcher frame: the type ids one ``try`` statement's handlers catch;
#: ``None`` inside the tuple marks a catch-all (bare ``except``).
_Catchers = tuple[tuple[str | None, ...], ...]


def _caught(index: ProjectIndex, type_id: str, catchers: _Catchers) -> bool:
    for frame in catchers:
        for catch_id in frame:
            if catch_id is None:
                return True
            if index.is_exception_subtype(type_id, catch_id):
                return True
    return False


class _RaiseCollector:
    """Collect one function's raise sites and call sites with try context."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.own: list[EscapingRaise] = []
        #: ``(callee qualname, enclosing catcher frames)`` per project call.
        self.calls: list[tuple[str, _Catchers]] = []
        self._walk(info.node.body, (), None)

    def _handler_types(self, handler: ast.ExceptHandler) -> tuple[str | None, ...]:
        if handler.type is None:
            return (None,)
        exprs = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        return tuple(
            self.index.resolve_exception_type(self.info.module, expr) or None
            for expr in exprs
        )

    def _record_raise(self, type_id: str | None, node: ast.AST, catchers: _Catchers) -> None:
        if type_id is None or _caught(self.index, type_id, catchers):
            return
        display = type_id.rsplit("::", 1)[-1] if "::" in type_id else type_id
        self.own.append(
            EscapingRaise(
                type_id=type_id,
                display=display,
                path=str(self.info.module.path),
                line=getattr(node, "lineno", self.info.node.lineno),
                origin=self.info.qualname,
            )
        )

    def _walk(
        self,
        stmts: list[ast.stmt],
        catchers: _Catchers,
        current_handler: tuple[str | None, ...] | None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Raise):
                if stmt.exc is None:
                    # Bare re-raise: escapes with the caught types.
                    for type_id in current_handler or ():
                        self._record_raise(type_id, stmt, catchers)
                else:
                    type_id = self.index.resolve_exception_type(
                        self.info.module, stmt.exc
                    )
                    self._record_raise(type_id, stmt, catchers)
                self._collect_calls(stmt, catchers)
            elif isinstance(stmt, ast.Try):
                frame = tuple(self._handler_types(h) for h in stmt.handlers)
                body_catchers = catchers + tuple(frame) if frame else catchers
                self._walk(stmt.body, body_catchers, current_handler)
                # else/finally/handler bodies: this try's handlers no
                # longer apply; a handler body knows what it caught so a
                # bare ``raise`` can be resolved.
                self._walk(stmt.orelse, catchers, current_handler)
                for handler, types in zip(stmt.handlers, frame):
                    self._walk(handler.body, catchers, types)
                self._walk(stmt.finalbody, catchers, current_handler)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested definitions raise at their own call sites
            else:
                self._collect_calls(stmt, catchers)
                for body in self._nested_bodies(stmt):
                    self._walk(body, catchers, current_handler)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                bodies.append(block)
        return bodies

    def _collect_calls(self, stmt: ast.stmt, catchers: _Catchers) -> None:
        own_exprs: list[ast.AST] = []
        if self._nested_bodies(stmt):
            # Compound statement: only its header expressions execute at
            # this level; body statements are walked separately.
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    own_exprs.append(value)
            for item in getattr(stmt, "items", []) or []:
                own_exprs.append(item.context_expr)
        else:
            own_exprs.append(stmt)
        for expr in own_exprs:
            for node in walk_expressions(expr):
                if isinstance(node, ast.Call):
                    targets = self.index.graph.resolve_call(self.info, node)
                    if targets is TOP:
                        continue
                    for target in targets:  # type: ignore[union-attr]
                        self.calls.append((target, catchers))
