"""The ``repro-lint`` driver: walk a tree, run the checkers, report.

This is the console-script entry point (``repro-lint`` in
``pyproject.toml``) and the programmatic API the test suite uses.  It
is deliberately engine-free — importing it pulls in nothing beyond the
stdlib and the checker modules — so the CI ``static-analysis`` job can
run it on a bare interpreter before any test dependency is installed.

Usage::

    repro-lint                      # lint src/repro (the default root)
    repro-lint path/to/tree ...     # lint explicit files or directories
    repro-lint --select io-discipline,REPRO104
    repro-lint --ignore determinism --format=json
    repro-lint --baseline lint-baseline.json              # report new only
    repro-lint --baseline lint-baseline.json --write-baseline
    repro-lint --list-rules

The per-module rules run file by file; the flow-sensitive project rules
(REPRO110–112 and friends, any :class:`~repro.analysis.base.ProjectChecker`)
run once over a shared :class:`~repro.analysis.flow.summaries.ProjectIndex`
built from every file that parsed.

A **baseline** turns the linter incremental: ``--write-baseline`` records
the current findings to the ``--baseline`` file, and later runs with
``--baseline`` report (and fail on) only findings *not* in it.  Matching
is by ``(rule, path, message)`` with multiset semantics and ignores line
numbers, so unrelated edits above a baselined finding do not churn it —
but a *second* identical finding in the same file is new.

Exit status is ``0`` when the tree is clean (or no non-baselined finding
remains), ``1`` when any new finding is reported (including files that
fail to parse, reported as ``REPRO100 parse-error``), and ``2`` on usage
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.base import Checker, Finding, ProjectChecker, SourceModule
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.durability import DurabilityChecker
from repro.analysis.exception_contracts import ExceptionContractChecker
from repro.analysis.flow.summaries import ProjectIndex
from repro.analysis.generation import GenerationChecker
from repro.analysis.io_discipline import IoDisciplineChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.plan_purity import PlanPurityChecker
from repro.analysis.race import RaceChecker
from repro.analysis.shm_hygiene import ShmHygieneChecker

__all__ = [
    "ALL_CHECKERS",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "main",
    "select_checkers",
]

#: Every registered rule, in rule-id order.
ALL_CHECKERS: tuple[Checker, ...] = (
    IoDisciplineChecker(),
    LockDisciplineChecker(),
    PlanPurityChecker(),
    GenerationChecker(),
    DeterminismChecker(),
    ShmHygieneChecker(),
    RaceChecker(),
    ExceptionContractChecker(),
    DurabilityChecker(),
)

_PARSE_HINT = "fix the syntax error; repro-lint only checks files that parse"


def _iter_source_files(paths: list[Path]) -> list[tuple[Path, Path | None]]:
    """Expand files/directories into sorted, de-duplicated ``(file, root)`` pairs.

    ``root`` is the scanned directory a file came from (``None`` for files
    given explicitly); it anchors each module's logical location so the
    path-scoped rules fire correctly in fixture trees too.
    """
    files: dict[Path, Path | None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    files.setdefault(candidate, path)
        else:
            files.setdefault(path, None)
    return sorted(files.items())


def select_checkers(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Checker]:
    """Resolve ``--select`` / ``--ignore`` tokens against the registry.

    Tokens are rule ids (``REPRO101``) or slugs (``io-discipline``),
    case-insensitive.  Unknown tokens raise ``ValueError`` — a typo in a
    CI config must fail loudly, not silently lint nothing.
    """
    known = {c.rule.lower(): c for c in ALL_CHECKERS}
    known.update({c.slug.lower(): c for c in ALL_CHECKERS})

    def resolve(tokens: list[str]) -> set[str]:
        rules: set[str] = set()
        for token in tokens:
            checker = known.get(token.strip().lower())
            if checker is None:
                raise ValueError(f"unknown rule {token!r}; see `repro-lint --list-rules`")
            rules.add(checker.rule)
        return rules

    active = {c.rule for c in ALL_CHECKERS}
    if select:
        active = resolve(select)
    if ignore:
        active -= resolve(ignore)
    return [c for c in ALL_CHECKERS if c.rule in active]


def lint_paths(
    paths: list[Path], checkers: list[Checker] | None = None
) -> tuple[list[Finding], int]:
    """Lint every source file under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by path,
    line and rule so output is deterministic across runs.
    """
    if checkers is None:
        checkers = list(ALL_CHECKERS)
    findings: list[Finding] = []
    files = _iter_source_files(paths)
    modules: list[SourceModule] = []
    for path, root in files:
        try:
            module = SourceModule.from_path(path, root=root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="REPRO100",
                    slug="parse-error",
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                    hint=_PARSE_HINT,
                )
            )
            continue
        modules.append(module)
        for checker in checkers:
            findings.extend(checker.run(module))
    # Flow-sensitive rules run once over the whole parsed project: their
    # facts (call-graph summaries) span module boundaries by design.
    project_checkers = [c for c in checkers if isinstance(c, ProjectChecker)]
    if project_checkers and modules:
        index = ProjectIndex(modules)
        for checker in project_checkers:
            findings.extend(checker.run_project(index))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, len(files)


def _baseline_key(finding: Finding) -> tuple[str, str, str]:
    """The line-insensitive identity a baseline matches findings by."""
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Parse a baseline file into a multiset of finding keys.

    Raises ``ValueError`` on malformed content — a corrupt baseline must
    not silently accept every finding.
    """
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no 'findings' list")
    keys: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path} has a non-object finding entry")
        try:
            keys[(str(entry["rule"]), str(entry["path"]), str(entry["message"]))] += 1
        except KeyError as exc:
            raise ValueError(f"baseline {path} entry is missing {exc}") from exc
    return keys


def apply_baseline(
    findings: list[Finding], baseline: Counter[tuple[str, str, str]]
) -> list[Finding]:
    """The findings *not* accounted for by ``baseline`` (multiset match)."""
    budget = Counter(baseline)
    new: list[Finding] = []
    for finding in findings:
        key = _baseline_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    return new


def _write_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _default_root() -> Path | None:
    """The implicit scan root: ``src/repro`` relative to the cwd."""
    root = Path("src") / "repro"
    return root if root.is_dir() else None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant checker suite (stdlib-ast, engine-free).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids/slugs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids/slugs to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON baseline: report only findings not recorded in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings to the --baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_tokens(raw: list[str] | None) -> list[str] | None:
    if raw is None:
        return None
    return [token for chunk in raw for token in chunk.split(",") if token.strip()]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.rule}  {checker.slug}")
        return 0

    paths = list(args.paths)
    if not paths:
        root = _default_root()
        if root is None:
            parser.error("no paths given and ./src/repro does not exist")
        paths = [root]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    try:
        checkers = select_checkers(_split_tokens(args.select), _split_tokens(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))

    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    findings, files_checked = lint_paths(paths, checkers)

    if args.write_baseline:
        assert args.baseline is not None
        _write_baseline(args.baseline, findings)
        print(
            f"repro-lint: baseline written to {args.baseline} "
            f"({len(findings)} findings)"
        )
        return 0

    baselined = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        total = len(findings)
        findings = apply_baseline(findings, baseline)
        baselined = total - len(findings)

    if args.format == "json":
        summary = {c.rule: 0 for c in checkers}
        summary["REPRO100"] = 0
        for finding in findings:
            summary[finding.rule] = summary.get(finding.rule, 0) + 1
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "rules": [c.rule for c in checkers],
                    "baselined": baselined,
                    "summary": summary,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        suffix = f" ({baselined} baselined)" if baselined else ""
        noun = "finding" if len(findings) == 1 else "findings"
        if findings:
            print(
                f"repro-lint: {len(findings)} {noun} in {files_checked} "
                f"files{suffix}"
            )
        else:
            print(
                f"repro-lint: clean ({files_checked} files, "
                f"{len(checkers)} rules){suffix}"
            )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
