"""REPRO101 ``io-discipline`` — all mutating I/O goes through the shim.

PR 6's crash-safety story rests on one rule: every syscall that can
leave bytes on disk (open-for-write, write, fsync, rename/replace,
unlink) is issued through an :class:`~repro.storage.faults.IOShim`, so
the fault injector can cut power at any single operation and the crash
sweep can prove recovery.  A raw ``open()`` or ``os.replace()`` in the
storage/engine/ingest layers is invisible to that sweep — a silent hole
in the durability proof.

The rule therefore flags, in modules under ``storage/`` and in
``core/engine.py`` / ``core/ingest.py``:

* calls to the ``open`` builtin,
* ``os.rename`` / ``os.replace`` / ``os.unlink`` / ``os.remove`` /
  ``os.fsync`` / ``os.open`` / ``os.truncate``,
* ``Path``-style method calls — ``.write_bytes`` / ``.write_text`` /
  ``.open`` / ``.unlink`` / ``.rename`` / ``.touch`` — whose receiver
  is not an I/O shim (a name ending in ``io`` or called ``shim``).

``storage/faults.py`` is exempt wholesale: it *is* the shim, the one
blessed home for raw syscalls.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, SourceModule, dotted_name, receiver_tail

__all__ = ["IoDisciplineChecker"]

#: ``os.<name>`` calls that mutate the filesystem (or open fds raw).
_OS_CALLS = frozenset(
    {"rename", "replace", "unlink", "remove", "fsync", "open", "truncate", "rmdir"}
)

#: Method names that write or open when called on a ``Path``/file-like
#: receiver.  ``.replace`` is deliberately absent: ``str.replace`` is
#: pervasive and a receiver-name heuristic cannot tell the two apart —
#: the ``os.replace`` form above covers the real rename-over syscall.
_PATH_METHODS = frozenset({"write_bytes", "write_text", "open", "unlink", "rename", "touch"})

#: Receiver tail names recognised as a shim: ``self.io.open`` is the
#: blessed pattern, ``shim``/``injector`` appear in the fault tests.
_SHIM_TAILS = frozenset({"io", "_io", "shim", "_shim", "injector"})


def _is_shim_receiver(node: ast.AST) -> bool:
    """Whether a call receiver looks like an ``IOShim`` instance."""
    tail = receiver_tail(node)
    return tail is not None and (tail in _SHIM_TAILS or tail.endswith("io"))


class IoDisciplineChecker(Checker):
    """Flag raw filesystem mutation that bypasses the ``IOShim``."""

    rule = "REPRO101"
    slug = "io-discipline"
    hint = (
        "route the call through the module's IOShim (`self.io.open/write/"
        "fsync/replace/unlink`) so the fault injector and crash sweep see it; "
        "use `staged_tmp_path()` for staged-manifest tmp files"
    )

    def applies(self, module: SourceModule) -> bool:
        """Storage layer plus the two engine modules that commit state."""
        parts = module.logical_parts
        if not parts:
            return False
        if parts[0] == "storage":
            return parts[-1] != "faults.py"  # the shim itself: raw by design
        return parts in (("core", "engine.py"), ("core", "ingest.py"))

    def check(self, module: SourceModule) -> list[Finding]:
        """Walk every call; flag the raw-syscall shapes documented above."""
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                findings.append(
                    self.finding(module, node, "raw `open()` builtin bypasses the IOShim")
                )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            qual = dotted_name(func)
            if qual is not None and qual.startswith("os.") and func.attr in _OS_CALLS:
                findings.append(
                    self.finding(module, node, f"raw `{qual}()` bypasses the IOShim")
                )
                continue
            if func.attr in _PATH_METHODS and not _is_shim_receiver(func.value):
                receiver = dotted_name(func.value) or "<expr>"
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{receiver}.{func.attr}()` writes without going through the IOShim",
                    )
                )
        return findings
