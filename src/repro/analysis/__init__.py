"""``repro.analysis`` — the ``repro-lint`` project-invariant checker suite.

A stdlib-:mod:`ast` static-analysis subsystem enforcing the conventions
the durable, parallel engine depends on but no generic linter knows
about.  Nine rules, each with a rule id, a slug and a remediation hint.
The first six are per-module syntactic visitors; REPRO110–112 are
flow-sensitive, built on the per-function CFGs, lock-set dataflow and
call-graph summaries in :mod:`repro.analysis.flow`:

========== ========================= ==================================================
Rule       Slug                      Invariant
========== ========================= ==================================================
REPRO101   ``io-discipline``         mutating I/O in the storage/engine/ingest layers
                                     routes through the fault-injectable ``IOShim``
REPRO102   ``lock-discipline``       ``# guarded-by:`` attributes only mutate under
                                     their declared lock (or in ``# holds:`` methods)
REPRO103   ``plan-purity``           logical-plan dataclasses are frozen; streaming
                                     executor methods never write engine state
REPRO104   ``generation-discipline`` dataset mutations in ``core/`` bump a generation
                                     token in the same function
REPRO105   ``determinism``           no wall clocks / unseeded RNG in ``hermes``,
                                     ``qut``, ``sql`` (the bit-identity paths) or
                                     ``eval/quality.py`` (seed-pinned re-runs)
REPRO106   ``shm-hygiene``           every ``ShmArena`` is ``with``-scoped or the
                                     module default arena
REPRO110   ``race-detection``        guarded attributes are read/written only on paths
                                     where the declared lock is held, verified through
                                     helpers from every public entry point
REPRO111   ``exception-contract``    storage/ and ``repro.api`` public functions only
                                     let their documented exception types escape
REPRO112   ``durability-ordering``   commit paths stage, fsync, rename, then fsync the
                                     directory — in that order, on every normal path
========== ========================= ==================================================

Findings can be suppressed per line with a ``# repro-lint: allow[RULE]``
comment (rule id or slug) on, or directly above, the offending line (for
decorated ``def`` findings: above the decorator stack).  Run locally
with ``repro-lint`` (or ``python -m repro.analysis.driver``); CI runs
the same with ``--baseline`` so only new findings fail the build.  See
``docs/static-analysis.md`` for the full rule reference.
"""

from repro.analysis.base import Checker, Finding, ProjectChecker, SourceModule
from repro.analysis.driver import (
    ALL_CHECKERS,
    apply_baseline,
    lint_paths,
    load_baseline,
    main,
    select_checkers,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "ProjectChecker",
    "SourceModule",
    "apply_baseline",
    "lint_paths",
    "load_baseline",
    "main",
    "select_checkers",
]
