"""``repro.analysis`` — the ``repro-lint`` project-invariant checker suite.

A stdlib-:mod:`ast` static-analysis subsystem enforcing the conventions
the durable, parallel engine depends on but no generic linter knows
about.  Six rules, each a small visitor with a rule id, a slug and a
remediation hint:

========== ======================== ==================================================
Rule       Slug                     Invariant
========== ======================== ==================================================
REPRO101   ``io-discipline``        mutating I/O in the storage/engine/ingest layers
                                    routes through the fault-injectable ``IOShim``
REPRO102   ``lock-discipline``      ``# guarded-by:`` attributes only mutate under
                                    their declared lock (or in ``# holds:`` methods)
REPRO103   ``plan-purity``          logical-plan dataclasses are frozen; streaming
                                    executor methods never write engine state
REPRO104   ``generation-discipline`` dataset mutations in ``core/`` bump a generation
                                    token in the same function
REPRO105   ``determinism``          no wall clocks / unseeded RNG in ``hermes``,
                                    ``qut``, ``sql`` (the bit-identity paths)
REPRO106   ``shm-hygiene``          every ``ShmArena`` is ``with``-scoped or the
                                    module default arena
========== ======================== ==================================================

Findings can be suppressed per line with a ``# repro-lint: allow[RULE]``
comment (rule id or slug) on, or directly above, the offending line.
Run locally with ``repro-lint`` (or ``python -m repro.analysis.driver``);
see ``docs/static-analysis.md`` for the full rule reference.
"""

from repro.analysis.base import Checker, Finding, SourceModule
from repro.analysis.driver import ALL_CHECKERS, lint_paths, main, select_checkers

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "SourceModule",
    "lint_paths",
    "main",
    "select_checkers",
]
