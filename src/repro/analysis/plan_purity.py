"""REPRO103 ``plan-purity`` — logical plans stay frozen and side-effect-free.

PR 4's plan layer is shared by the SQL front end, the fluent builder and
``EXPLAIN``; prepared-statement memoisation keys on plan identity.  Both
depend on two properties this rule machine-checks:

* every ``@dataclass`` in ``sql/plan.py`` is declared ``frozen=True`` —
  a mutable plan node would silently break memo keys and let an
  executor smuggle state between runs;
* no *streaming* method of a ``*Executor`` class (one whose body —
  including nested generator helpers — contains ``yield``) assigns to
  ``self.engine`` state.  Streaming methods run lazily, interleaved
  with other cursors over the same engine; writes from inside them
  would race with the generation-token snapshot the cursor took at
  execute time.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, Finding, SourceModule

__all__ = ["PlanPurityChecker"]


def _is_dataclass_decorator(node: ast.expr) -> bool:
    """Whether a decorator expression is ``dataclass`` / ``dataclass(...)``."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return isinstance(target, ast.Name) and target.id == "dataclass"


def _is_frozen(node: ast.expr) -> bool:
    """Whether a dataclass decorator passes ``frozen=True``."""
    if not isinstance(node, ast.Call):
        return False
    for keyword in node.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _engine_rooted(node: ast.AST) -> bool:
    """Whether an attribute/subscript chain is rooted at ``self.engine``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "engine"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
        node = node.value
    return False


class PlanPurityChecker(Checker):
    """Flag mutable plan dataclasses and engine writes in streaming methods."""

    rule = "REPRO103"
    slug = "plan-purity"
    hint = (
        "declare plan dataclasses `@dataclass(frozen=True)`; move engine "
        "mutations out of streaming (yield) methods into the eager execute path"
    )

    def applies(self, module: SourceModule) -> bool:
        """Only the ``sql/`` package carries plan/executor code."""
        parts = module.logical_parts
        return bool(parts) and parts[0] == "sql"

    def check(self, module: SourceModule) -> list[Finding]:
        """Run the frozen check in ``plan.py`` and the executor check anywhere."""
        findings: list[Finding] = []
        if module.logical_parts[-1] == "plan.py":
            findings.extend(self._check_frozen(module))
        findings.extend(self._check_executors(module))
        return findings

    def _check_frozen(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorators = [d for d in node.decorator_list if _is_dataclass_decorator(d)]
            if decorators and not any(_is_frozen(d) for d in decorators):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"plan dataclass `{node.name}` is not declared frozen=True",
                    )
                )
        return findings

    def _check_executors(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Executor"):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if self._is_streaming(stmt):
                            findings.extend(self._engine_writes(module, stmt))
        return findings

    @staticmethod
    def _is_streaming(func: ast.AST) -> bool:
        """Whether a method (or a helper nested in it) yields."""
        return any(
            isinstance(node, (ast.Yield, ast.YieldFrom)) for node in ast.walk(func)
        )

    def _engine_writes(self, module: SourceModule, func: ast.AST) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(func):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if _engine_rooted(target):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"streaming method `{func.name}` assigns to engine state",
                        )
                    )
        return findings
