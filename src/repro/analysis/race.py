"""REPRO110 ``race-detection`` — guarded state is reachable only under its lock.

REPRO102 checks each method in isolation and takes ``# holds:``
annotations on faith; this rule closes both gaps with the
:mod:`repro.analysis.flow` core.  It is *flow-sensitive* (a lock held on
only one arm of an ``if`` does not count — the must-held set comes from
the CFG dataflow, with ``with``-exit and early-return edges modelled)
and *interprocedural* (an unlocked access inside a private helper is an
**obligation** that propagates to the helper's callers; a call site made
under ``with self.<lock>:`` discharges it).  Reads are checked as well
as writes: a torn read of ``HermesEngine._frames`` mid-``register`` is
exactly the bug the multi-client server mode must not have.

A finding is reported when an undischarged obligation surfaces in a
**public entry point** — a function or method whose name has no leading
underscore (engine, pool and prepared-statement surfaces are all
public-named).  ``# holds:`` annotations are honoured only there, as an
explicit caller contract at the API boundary; on private helpers they
are ignored, because for helpers this rule *verifies* the claim against
actual callers instead of trusting it.  ``__init__`` bodies are exempt
(no concurrent access before construction), and unknown callees
(:data:`~repro.analysis.flow.callgraph.TOP`) contribute no obligations —
the rule under-approximates rather than guess.

Out of scope, documented: accesses through aliases
(``cache = self._frames``) and cross-object accesses
(``other._frames``); mutate through ``self`` so the analysis can see it.
"""

from __future__ import annotations

from repro.analysis.base import Finding, ProjectChecker
from repro.analysis.flow.summaries import ProjectIndex

__all__ = ["RaceChecker"]


class RaceChecker(ProjectChecker):
    """Flag guarded-attribute accesses reachable unlocked from public entry points."""

    rule = "REPRO110"
    slug = "race-detection"
    hint = (
        "hold the declared lock on every path: wrap the access in "
        "`with self.<lockname>:` in the helper, or acquire the lock in each "
        "public entry point that reaches it"
    )

    def check_project(self, index: ProjectIndex) -> list[Finding]:
        """Report each unlocked access once, naming one public root it leaks from."""
        obligations = index.lock_obligations()
        findings: list[Finding] = []
        reported: set[tuple[str, int, str]] = set()
        for qualname in sorted(obligations):
            info = index.graph.functions[qualname]
            if not info.is_public or info.name == "__init__":
                continue
            entry_holds = index.declared_holds(info)
            root = qualname.rsplit("::", 1)[-1]
            for obligation in sorted(
                obligations[qualname], key=lambda o: (o.path, o.line, o.attr)
            ):
                if obligation.lock in entry_holds:
                    continue
                key = (obligation.path, obligation.line, obligation.attr)
                if key in reported:
                    continue
                reported.add(key)
                where = (
                    "locally"
                    if obligation.via == qualname
                    else f"via `{obligation.via.rsplit('::', 1)[-1]}`"
                )
                findings.append(
                    Finding(
                        rule=self.rule,
                        slug=self.slug,
                        path=obligation.path,
                        line=obligation.line,
                        message=(
                            f"`self.{obligation.attr}` is guarded-by "
                            f"`{obligation.lock}` but public entry `{root}` "
                            f"reaches this {obligation.kind} {where} without "
                            f"holding it"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
