"""``python -m repro.analysis`` — module-invocation form of ``repro-lint``."""

import sys

from repro.analysis.driver import main

if __name__ == "__main__":
    sys.exit(main())
