"""REPRO111 ``exception-contract`` — public surfaces raise documented types only.

Callers of the storage layer catch :class:`~repro.storage.errors.StorageError`
to distinguish "the data is damaged, run repro-fsck" from a programming
bug; callers of :mod:`repro.api` catch ``SQLError``.  Both contracts die
the moment one code path lets a raw ``RuntimeError`` slip through — the
caller's ``except`` arm misses it and the operator sees a stack trace
instead of a remediation hint.  This rule machine-checks the contracts.

For every function it builds an **escaping-raise summary** — the
function's own ``raise`` sites minus whatever its enclosing
``try``/``except`` blocks catch, plus its callees' summaries filtered
the same way at each call site (a bounded fixpoint over the call graph,
see :mod:`repro.analysis.flow.summaries`).  Handler matching is
subtype-aware through a statically-built class hierarchy, so
``except StorageError:`` is known to catch ``CorruptManifestError`` and
``raise`` inside a handler re-raises the caught types.

The contract applies to functions with **public names** (no leading
underscore — including methods of private classes, which back public
protocol objects like pagers).  Dynamically-constructed exceptions and
raises behind :data:`~repro.analysis.flow.callgraph.TOP` callees are
invisible to the summary; the rule under-approximates rather than guess.
Documented pass-through builtins (``ValueError`` for bad arguments,
``OSError`` for the filesystem, ``KeyError``/``IndexError``/``TypeError``
for lookup and typing bugs, ``NotImplementedError``, ``StopIteration``
for iterator protocols, ``AssertionError`` for defensive unreachable
markers) are always allowed, as is the fault-injection
harness's ``InjectedCrash`` — a ``BaseException`` precisely so that it
*bypasses* these contracts.
"""

from __future__ import annotations

from repro.analysis.base import Finding, ProjectChecker, SourceModule
from repro.analysis.flow.summaries import EscapingRaise, ProjectIndex

__all__ = ["ExceptionContractChecker"]

#: Builtin exception types any public surface may let escape, with the
#: rationale above.  Subtype matching applies (``FileNotFoundError`` is
#: covered by ``OSError``).
_ALLOWED_BUILTINS = (
    "ValueError",
    "KeyError",
    "TypeError",
    "IndexError",
    "OSError",
    "NotImplementedError",
    "StopIteration",
    "AssertionError",
)

#: Project-class ids (``"<module key>::<Class>"``) allowed everywhere.
_ALLOWED_PROJECT_COMMON = (
    "storage/errors.py::StorageError",
    "storage/faults.py::InjectedCrash",
)

#: Extra allowance for the ``repro.api`` surface: the documented SQL
#: error hierarchy (``InterfaceError`` subclasses ``SQLError``).
_ALLOWED_PROJECT_API = ("sql/errors.py::SQLError",)


def _contract_for(module: SourceModule) -> tuple[str, tuple[str, ...]] | None:
    """``(surface name, allowed ids)`` for modules under a contract."""
    parts = module.logical_parts
    if parts[:1] == ("storage",) and parts != ("storage", "faults.py"):
        return ("storage", _ALLOWED_PROJECT_COMMON + _ALLOWED_BUILTINS)
    if parts == ("api.py",):
        return (
            "repro.api",
            _ALLOWED_PROJECT_COMMON + _ALLOWED_PROJECT_API + _ALLOWED_BUILTINS,
        )
    return None


class ExceptionContractChecker(ProjectChecker):
    """Flag undocumented exception types escaping contracted public surfaces."""

    rule = "REPRO111"
    slug = "exception-contract"
    hint = (
        "raise a StorageError subclass from repro.storage.errors (or the "
        "documented surface type), or catch the internal error and re-raise "
        "it as one; see docs/static-analysis.md#flow-sensitive-rules"
    )

    def _allowed(
        self, index: ProjectIndex, escaped: EscapingRaise, allowed: tuple[str, ...]
    ) -> bool:
        return any(
            index.is_exception_subtype(escaped.type_id, allowed_id)
            for allowed_id in allowed
        )

    def check_project(self, index: ProjectIndex) -> list[Finding]:
        """Check every public-named function of a contracted module."""
        summaries = index.escaping_raises()
        findings: list[Finding] = []
        reported: set[tuple[str, int, str]] = set()
        for qualname in sorted(summaries):
            info = index.graph.functions[qualname]
            if not info.is_public:
                continue
            contract = _contract_for(info.module)
            if contract is None:
                continue
            surface, allowed = contract
            public = qualname.rsplit("::", 1)[-1]
            for escaped in sorted(
                summaries[qualname], key=lambda e: (e.path, e.line, e.type_id)
            ):
                if self._allowed(index, escaped, allowed):
                    continue
                key = (escaped.path, escaped.line, escaped.type_id)
                if key in reported:
                    continue
                reported.add(key)
                where = (
                    "raised here"
                    if escaped.origin == qualname
                    else f"raised in `{escaped.origin.rsplit('::', 1)[-1]}`"
                )
                findings.append(
                    Finding(
                        rule=self.rule,
                        slug=self.slug,
                        path=escaped.path,
                        line=escaped.line,
                        message=(
                            f"`{escaped.display}` ({where}) escapes public "
                            f"{surface} function `{public}`, which is outside "
                            f"its documented error contract"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
