"""REPRO102 ``lock-discipline`` — guarded attributes mutate under their lock.

The ROADMAP's next open item is a multi-client server, which turns
``HermesEngine``'s caches from single-thread conveniences into shared
mutable state.  This rule lets the codebase *declare* which lock guards
which attribute today, and machine-checks every mutation site, so the
server-mode refactor starts from a verified baseline instead of a
folklore one.

Declaration syntax — a trailing comment on the attribute's assignment
in ``__init__``::

    self._frames: dict[str, MODFrame] = {}  # guarded-by: _catalog_lock

Every later mutation of ``self._frames`` (assignment, augmented or
subscript assignment, ``del``, or a mutating method call such as
``.pop()`` / ``.clear()`` / ``.update()``) must then happen either

* inside a ``with self._catalog_lock:`` block, or
* in a method annotated ``# holds: _catalog_lock`` on (or directly
  above) its ``def`` line — for private helpers whose callers already
  hold the lock.

``__init__`` itself is exempt (no concurrent access before construction
completes).  Reads are not checked: the engine's read paths are
generation-validated, and flagging reads would drown the signal.
Aliasing (``cache = self._frames; cache.clear()``) is out of scope for
this rule — mutate through ``self`` so the checker can see it.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.base import Checker, Finding, SourceModule

__all__ = ["LockDisciplineChecker", "declared_holds", "guarded_attributes"]

_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_HOLDS_RE = re.compile(r"holds:\s*([A-Za-z_][A-Za-z0-9_, ]*)")

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
        "sort",
    }
)


def guarded_attributes(module: SourceModule, cls: ast.ClassDef) -> dict[str, str]:
    """Attribute → lock name, from ``# guarded-by:`` comments in ``__init__``.

    Shared with the flow-sensitive REPRO110 race checker, which consumes
    the same declaration vocabulary interprocedurally.
    """
    guarded: dict[str, str] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
            for child in ast.walk(stmt):
                if isinstance(child, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        child.targets if isinstance(child, ast.Assign) else [child.target]
                    )
                    comment = module.comment(child.lineno) or ""
                    match = _GUARDED_RE.search(comment)
                    if not match:
                        continue
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            guarded[attr] = match.group(1)
    return guarded


def declared_holds(module: SourceModule, func: ast.AST) -> frozenset[str]:
    """Locks a ``# holds:`` annotation on/above the ``def`` line grants."""
    held: set[str] = set()
    line = getattr(func, "lineno", 0)
    for candidate in (line, line - 1):
        comment = module.comment(candidate)
        if not comment:
            continue
        match = _HOLDS_RE.search(comment)
        if match:
            held.update(name.strip() for name in match.group(1).split(",") if name.strip())
    return frozenset(held)


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` (possibly behind subscripts) → ``"X"``, else ``None``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flatten_targets(target: ast.AST) -> list[ast.AST]:
    """Unpack tuple/list assignment targets into leaf target nodes."""
    if isinstance(target, (ast.Tuple, ast.List)):
        leaves: list[ast.AST] = []
        for element in target.elts:
            leaves.extend(_flatten_targets(element))
        return leaves
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return [target]


class LockDisciplineChecker(Checker):
    """Flag mutations of ``# guarded-by:`` attributes outside their lock."""

    rule = "REPRO102"
    slug = "lock-discipline"
    hint = (
        "wrap the mutation in `with self.<lockname>:`, or annotate the method "
        "`# holds: <lockname>` if every caller already holds the lock"
    )

    def check(self, module: SourceModule) -> list[Finding]:
        """Check every class in ``module`` that declares guarded attributes."""
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> list[Finding]:
        guarded = self._guarded_attrs(module, cls)
        if not guarded:
            return []
        findings: list[Finding] = []
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            held = self._declared_holds(module, stmt)
            self._visit(module, stmt.body, guarded, held, findings)
        return findings

    @staticmethod
    def _guarded_attrs(module: SourceModule, cls: ast.ClassDef) -> dict[str, str]:
        """Attribute → lock name, from ``# guarded-by:`` comments in ``__init__``."""
        return guarded_attributes(module, cls)

    @staticmethod
    def _declared_holds(module: SourceModule, func: ast.AST) -> frozenset[str]:
        """Locks a ``# holds:`` annotation on/above the ``def`` line grants."""
        return declared_holds(module, func)

    def _visit(
        self,
        module: SourceModule,
        stmts: list[ast.stmt],
        guarded: dict[str, str],
        held: frozenset[str],
        findings: list[Finding],
    ) -> None:
        """Walk statements tracking which locks the ``with`` stack holds."""
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = {
                    attr
                    for item in stmt.items
                    if (attr := _self_attr(item.context_expr)) is not None
                }
                # Non-lock context managers acquire nothing; harmless to add.
                self._visit(module, stmt.body, guarded, held | acquired, findings)
                continue
            nested = self._nested_bodies(stmt)
            if nested:
                # Compound statement: check only its own expression fields
                # (e.g. an `if` test) here, then recurse into the bodies so
                # nested `with self.<lock>:` blocks are tracked correctly.
                self._check_exprs(module, self._own_exprs(stmt), guarded, held, findings)
                for body in nested:
                    self._visit(module, body, guarded, held, findings)
            else:
                self._check_stmt(module, stmt, guarded, held, findings)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        """Statement lists nested under ``stmt`` (if/for/try/def bodies...)."""
        bodies: list[list[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """The expression fields directly on a compound statement."""
        exprs: list[ast.expr] = []
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                exprs.append(value)
        return exprs

    def _check_exprs(
        self,
        module: SourceModule,
        exprs: list[ast.expr],
        guarded: dict[str, str],
        held: frozenset[str],
        findings: list[Finding],
    ) -> None:
        """Flag unlocked mutating method calls inside expression trees."""
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in _MUTATING_METHODS:
                        attr = _self_attr(node.func.value)
                        lock = guarded.get(attr) if attr is not None else None
                        if lock is not None and lock not in held:
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    f"`self.{attr}` is guarded-by `{lock}` but is "
                                    f"mutated without holding it",
                                )
                            )

    def _check_stmt(
        self,
        module: SourceModule,
        stmt: ast.stmt,
        guarded: dict[str, str],
        held: frozenset[str],
        findings: list[Finding],
    ) -> None:
        mutated: list[tuple[str, ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in _flatten_targets(target):
                    if (attr := _self_attr(leaf)) is not None:
                        mutated.append((attr, leaf))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if (attr := _self_attr(stmt.target)) is not None:
                mutated.append((attr, stmt.target))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if (attr := _self_attr(target)) is not None:
                    mutated.append((attr, target))
        # Mutating method calls can appear in any expression position of
        # the statement (bare call, assignment RHS, return value...).
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATING_METHODS:
                    if (attr := _self_attr(node.func.value)) is not None:
                        mutated.append((attr, node))
        for attr, node in mutated:
            lock = guarded.get(attr)
            if lock is not None and lock not in held:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`self.{attr}` is guarded-by `{lock}` but is mutated "
                        f"without holding it",
                    )
                )
