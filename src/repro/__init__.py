"""repro: reproduction of "Time-aware Sub-Trajectory Clustering in
Hermes@PostgreSQL" (Tampakis et al., ICDE 2018).

The package provides a pure-Python Moving Object Database (MOD) engine in
the spirit of Hermes@PostgreSQL, together with the two sub-trajectory
clustering modules the paper demonstrates:

* :mod:`repro.s2t` -- Sampling-based Sub-Trajectory Clustering
  (voting, segmentation, sampling, greedy clustering, outlier detection),
* :mod:`repro.qut` -- Query-based Trajectory Clustering on top of the
  ReTraTree hierarchical index,

plus the substrates they need (storage engine, GiST/3D R-tree indexing,
SQL front-end, baselines, visual-analytics data products and synthetic
data generation).

The convenience facade for end users lives in :mod:`repro.core`:

>>> from repro.core import HermesEngine
>>> from repro.datagen import aircraft_scenario
>>> engine = HermesEngine.in_memory()
>>> engine.load_mod("flights", aircraft_scenario(n_trajectories=40, seed=7))
>>> result = engine.s2t("flights")
>>> len(result.clusters) > 0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
