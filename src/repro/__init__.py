"""repro: reproduction of "Time-aware Sub-Trajectory Clustering in
Hermes@PostgreSQL" (Tampakis et al., ICDE 2018).

The package provides a pure-Python Moving Object Database (MOD) engine in
the spirit of Hermes@PostgreSQL, together with the two sub-trajectory
clustering modules the paper demonstrates:

* :mod:`repro.s2t` -- Sampling-based Sub-Trajectory Clustering
  (voting, segmentation, sampling, greedy clustering, outlier detection),
* :mod:`repro.qut` -- Query-based Trajectory Clustering on top of the
  ReTraTree hierarchical index,

plus the substrates they need (storage engine, GiST/3D R-tree indexing,
SQL front-end, baselines, visual-analytics data products and synthetic
data generation).

The public API v1 is the database-style connection layer of
:mod:`repro.api`:

>>> import repro
>>> from repro.datagen import aircraft_scenario
>>> conn = repro.connect()                        # ":memory:"; a path = durable
>>> mod, _ = aircraft_scenario(n_trajectories=40, seed=7)
>>> conn.engine.load_mod("flights", mod)
>>> rows = conn.dataset("flights").s2t().run()    # same plan as SELECT S2T(flights)
>>> len(rows) > 1
True

The engine facade underneath lives in :mod:`repro.core`
(:class:`~repro.core.engine.HermesEngine`).
"""

from repro._version import __version__


def connect(path=":memory:"):
    """Open a :class:`repro.api.Connection` (see :func:`repro.api.connect`).

    Imported lazily so ``import repro`` stays dependency-light.
    """
    from repro.api import connect as _connect

    return _connect(path)


__all__ = ["__version__", "connect"]
