"""Result model shared by S2T, QuT and the baselines.

A clustering result is a set of :class:`Cluster` objects (each with a
representative sub-trajectory and its members) plus the outlier
sub-trajectories.  The per-sample assignment view
(:meth:`ClusteringResult.point_assignments`) maps results back onto raw MOD
samples, which is what the VA module and the quality metrics consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hermes.trajectory import SubTrajectory
from repro.hermes.types import Period

__all__ = ["Cluster", "ClusteringResult"]


@dataclass
class Cluster:
    """A group of sub-trajectories formed around a representative."""

    cluster_id: int
    representative: SubTrajectory
    members: list[SubTrajectory] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of members (the representative counts as a member)."""
        return len(self.members)

    @property
    def period(self) -> Period:
        """Temporal extent covered by the cluster's members."""
        tmin = min(m.period.tmin for m in self.members)
        tmax = max(m.period.tmax for m in self.members)
        return Period(tmin, tmax)

    def object_ids(self) -> set[str]:
        """Distinct moving objects contributing to the cluster."""
        return {m.obj_id for m in self.members}


@dataclass
class ClusteringResult:
    """Outcome of a (sub-)trajectory clustering run."""

    method: str
    clusters: list[Cluster]
    outliers: list[SubTrajectory]
    params: object | None = None
    timings: dict[str, float] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_outliers(self) -> int:
        return len(self.outliers)

    @property
    def num_clustered(self) -> int:
        """Total sub-trajectories placed in clusters."""
        return sum(c.size for c in self.clusters)

    @property
    def total_runtime(self) -> float:
        """Sum of the recorded phase timings (seconds)."""
        return sum(self.timings.values())

    def cluster_by_id(self, cluster_id: int) -> Cluster:
        """Return the cluster with the given id."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"no cluster with id {cluster_id}")

    def all_subtrajectories(self) -> list[tuple[SubTrajectory, int | None]]:
        """Every sub-trajectory with its cluster id (``None`` for outliers)."""
        out: list[tuple[SubTrajectory, int | None]] = []
        for cluster in self.clusters:
            out.extend((member, cluster.cluster_id) for member in cluster.members)
        out.extend((sub, None) for sub in self.outliers)
        return out

    def point_assignments(self) -> dict[tuple[str, str], dict[int, int | None]]:
        """Per-sample cluster labels.

        Returns ``{traj_key: {sample_index: cluster_id or None}}``.  Samples
        not covered by any sub-trajectory of the result are absent.  When
        sub-trajectories overlap at cut samples, cluster membership wins over
        outlier status and lower cluster ids win ties (deterministic).
        """
        out: dict[tuple[str, str], dict[int, int | None]] = {}
        ordered = sorted(
            self.all_subtrajectories(),
            key=lambda item: (item[1] is None, item[1] if item[1] is not None else 0),
        )
        for sub, cluster_id in ordered:
            per_traj = out.setdefault(sub.parent_key, {})
            for idx in range(sub.start_idx, sub.end_idx + 1):
                if idx not in per_traj:
                    per_traj[idx] = cluster_id
        return out

    def summary(self) -> dict[str, object]:
        """Compact description used by reports and the SQL interface."""
        return {
            "method": self.method,
            "clusters": self.num_clusters,
            "outliers": self.num_outliers,
            "clustered_subtrajectories": self.num_clustered,
            "cluster_sizes": sorted((c.size for c in self.clusters), reverse=True),
            "runtime_s": round(self.total_runtime, 6),
        }
