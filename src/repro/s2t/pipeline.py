"""The full S2T-Clustering pipeline.

``S2TClustering(params).fit(mod)`` runs, in order:

1. voting            (NaTS phase 1),
2. segmentation      (NaTS phase 2),
3. sampling          (SaCO: representative selection),
4. greedy clustering (SaCO: cluster formation + outlier detection),

and returns a :class:`~repro.s2t.result.ClusteringResult` whose ``timings``
dictionary holds the per-phase wall-clock breakdown used by benchmark E10.

The voting phase honours ``S2TParams.voting_strategy`` (``"dense"``,
``"indexed"`` or ``"batched"``, default batched — see
:mod:`repro.s2t.voting`); the strategy actually used is reported in
``result.extras["voting_strategy"]``.  Greedy clustering always runs on the
batched columnar path (:mod:`repro.hermes.frame`).

The pipeline is frame-native: the MOD's columnar :class:`MODFrame` is built
**once per fit** (or taken prebuilt from the engine's frame catalog /
a partition scheduler) and shared by the voting and segmentation phases.
For partition-parallel execution across a process pool see
:func:`repro.core.parallel.partitioned_s2t`.
"""

from __future__ import annotations

from repro.hermes.frame import MODFrame
from repro.hermes.mod import MOD
from repro.index.rtree3d import RTree3D
from repro.s2t.clustering import greedy_clustering
from repro.s2t.params import S2TParams
from repro.s2t.result import ClusteringResult
from repro.s2t.sampling import select_representatives
from repro.s2t.segmentation import segment_mod
from repro.s2t.voting import VotingProfile, compute_voting

__all__ = ["S2TClustering"]


class S2TClustering:
    """Sampling-based Sub-Trajectory Clustering.

    Parameters
    ----------
    params:
        Tuning knobs; ``None`` uses data-driven defaults.

    Examples
    --------
    >>> from repro.datagen import lane_scenario
    >>> mod, _truth = lane_scenario(n_trajectories=30, seed=1)
    >>> result = S2TClustering().fit(mod)
    >>> result.num_clusters >= 1
    True
    """

    def __init__(self, params: S2TParams | None = None) -> None:
        self.params = params or S2TParams()
        self.last_voting_profile: VotingProfile | None = None

    def fit(
        self,
        mod: MOD,
        index: RTree3D[tuple[str, str]] | None = None,
        frame: MODFrame | None = None,
    ) -> ClusteringResult:
        """Cluster the MOD's sub-trajectories.

        Parameters
        ----------
        mod:
            The Moving Object Database to analyse.
        index:
            Optional pre-built trajectory R-tree reused for voting (the
            ReTraTree passes the partition-local index here).
        frame:
            Optional prebuilt columnar snapshot of ``mod`` (the engine's
            frame catalog and the partition scheduler pass theirs here).
            When omitted, the frame is built once and shared by the voting
            and segmentation phases.
        """
        if len(mod) == 0:
            return ClusteringResult(method="s2t", clusters=[], outliers=[], params=self.params)
        params = self.params.resolved(mod)
        if frame is None:
            frame = MODFrame.from_mod(mod)

        profile = compute_voting(mod, params, index=index, frame=frame)
        self.last_voting_profile = profile

        subtrajectories, voting_mass, seg_elapsed = segment_mod(
            mod, profile, params, frame=frame
        )
        representatives, sampling_elapsed = select_representatives(
            subtrajectories, voting_mass, params
        )
        result, clustering_elapsed = greedy_clustering(
            subtrajectories, representatives, params
        )

        result.params = params
        result.timings = {
            "voting": profile.elapsed_s,
            "segmentation": seg_elapsed,
            "sampling": sampling_elapsed,
            "clustering": clustering_elapsed,
        }
        result.extras = {
            "num_subtrajectories": len(subtrajectories),
            "num_representatives": len(representatives),
            "voting_strategy": profile.strategy,
            "voting_pairs_evaluated": profile.pairs_evaluated,
            "voting_pairs_pruned": profile.pairs_pruned,
        }
        return result
