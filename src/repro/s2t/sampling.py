"""The Sampling step of SaCO.

The sampling set S should contain sub-trajectories that are (a) highly voted
— many objects co-move with them — and (b) spread out, so that together they
cover the 3D space occupied by the dataset.  The greedy max-gain selection
below implements this trade-off:

``gain(s) = voting_mass(s) * (1 - coverage(s | already selected))``

where coverage is the Gaussian similarity of ``s`` to its closest selected
representative under the time-aware trajectory distance.  Selection stops
when the relative gain drops below ``params.gain_threshold`` or the optional
``max_representatives`` budget is exhausted.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.hermes.distances import spatiotemporal_distance
from repro.hermes.trajectory import SubTrajectory
from repro.s2t.params import S2TParams

__all__ = ["select_representatives"]


def _coverage_similarity(dist: float, radius: float) -> float:
    """Similarity in ``[0, 1]``: 1 when on top of a representative, 0 far away."""
    if math.isinf(dist):
        return 0.0
    return math.exp(-(dist * dist) / (2.0 * radius * radius))


def select_representatives(
    subtrajectories: list[SubTrajectory],
    voting_mass: dict[tuple[str, str, int, int], float],
    params: S2TParams,
) -> tuple[list[SubTrajectory], float]:
    """Greedy max-gain selection of the sampling set.

    Returns ``(representatives, elapsed_seconds)``.
    """
    start = time.perf_counter()
    if not subtrajectories:
        return [], time.perf_counter() - start

    radius = params.coverage_radius
    assert radius is not None, "params must be resolved before sampling"

    masses = np.array([voting_mass.get(sub.key, 0.0) for sub in subtrajectories])
    # Remaining gain of each candidate; updated as representatives are chosen.
    gains = masses.astype(float).copy()
    selected: list[int] = []
    selected_subs: list[SubTrajectory] = []

    max_reps = params.max_representatives or len(subtrajectories)
    first_gain: float | None = None

    while len(selected) < max_reps:
        best_idx = int(np.argmax(gains))
        best_gain = float(gains[best_idx])
        if best_gain <= 0:
            break
        if first_gain is None:
            first_gain = best_gain
        elif best_gain < params.gain_threshold * first_gain:
            break
        selected.append(best_idx)
        rep = subtrajectories[best_idx]
        selected_subs.append(rep)
        gains[best_idx] = -math.inf
        # Discount the gain of candidates covered by the new representative.
        for i, sub in enumerate(subtrajectories):
            if math.isinf(gains[i]) and gains[i] < 0:
                continue
            dist = spatiotemporal_distance(rep.traj, sub.traj, max_samples=32)
            coverage = _coverage_similarity(dist, radius)
            gains[i] = min(gains[i], masses[i] * (1.0 - coverage))

    return selected_subs, time.perf_counter() - start
