"""Parameter objects for S2T-Clustering.

Defaults are data-driven: thresholds expressed as a ``None`` are resolved
against the MOD's spatial extent when the pipeline runs, which is what lets
the same parameter object work across the aircraft, urban and maritime
scenarios without hand tuning (one of the paper's selling points over
TRACLUS/co-movement parameters).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.hermes.mod import MOD

__all__ = ["S2TParams"]


@dataclass(frozen=True)
class S2TParams:
    """Tuning knobs of the S2T pipeline.

    Parameters
    ----------
    sigma:
        Bandwidth of the Gaussian voting kernel (same unit as x/y).  ``None``
        resolves to 3 % of the spatial diagonal.
    voting_kernel:
        ``"gaussian"`` (default) or ``"triangular"`` — ablation E12.
    voting_strategy:
        How the voting phase executes (see :mod:`repro.s2t.voting`):

        * ``"dense"`` — all-pairs Python loop, the exact reference;
        * ``"indexed"`` — pair loop pruned by a 3D R-tree with a ``3 sigma``
          margin (the paper's access path; approximate for the Gaussian
          kernel at the ``~1e-2`` level);
        * ``"batched"`` (default) — the columnar
          :class:`~repro.hermes.frame.MODFrame` engine: R-tree plus
          sweep-line temporal prefilter, one vectorised interpolation pass
          per target; matches ``"dense"`` within ``1e-8``.
    use_index:
        Legacy knob: ``use_index=False`` forces the ``"dense"`` strategy
        regardless of ``voting_strategy``.  Kept for backward compatibility;
        prefer ``voting_strategy``.
    segmentation_method:
        ``"dp"`` for the optimal dynamic-programming segmentation or
        ``"greedy"`` for the linear-time heuristic — ablation E12.
    segmentation_penalty:
        Per-segment penalty of the DP objective, as a fraction of the total
        voting variance; larger values give fewer, longer sub-trajectories.
    min_segment_samples:
        Minimum number of samples per sub-trajectory.
    max_representatives:
        Upper bound on the sampling set size.  ``None`` lets the gain
        criterion decide.
    gain_threshold:
        Sampling stops when the next representative's gain falls below this
        fraction of the first representative's gain.
    coverage_radius:
        Distance within which a representative "covers" a sub-trajectory
        during sampling.  ``None`` resolves to ``2 * eps``.
    eps:
        Maximum distance at which a sub-trajectory joins a representative's
        cluster.  ``None`` resolves to 5 % of the spatial diagonal.
    min_cluster_support:
        Minimum members for a cluster to survive (the paper's ``γ``); smaller
        clusters are dissolved into outliers.
    temporal_tolerance:
        Extra temporal slack (the paper's ``t``) when matching sub-trajectories
        whose lifespans only partially overlap a representative's.
    voting_samples:
        Number of time samples per trajectory pair when computing synchronous
        distances for voting.
    n_jobs:
        Number of worker processes for partition-parallel S2T execution
        (:mod:`repro.core.parallel`).  ``1`` (default) runs the classic
        whole-MOD pipeline in-process; ``> 1`` splits the dataset into
        temporal partitions, fits each on a process pool and merges the
        per-partition results.
    """

    sigma: float | None = None
    voting_kernel: str = "gaussian"
    voting_strategy: str = "batched"
    use_index: bool = True
    segmentation_method: str = "dp"
    segmentation_penalty: float = 0.05
    min_segment_samples: int = 4
    max_representatives: int | None = None
    gain_threshold: float = 0.05
    coverage_radius: float | None = None
    eps: float | None = None
    min_cluster_support: int = 2
    temporal_tolerance: float = 0.0
    voting_samples: int = 64
    n_jobs: int = 1

    def resolved(self, mod: MOD) -> "S2TParams":
        """Return a copy with all ``None`` thresholds resolved against ``mod``."""
        bbox = mod.bbox
        diag = ((bbox.dx) ** 2 + (bbox.dy) ** 2) ** 0.5
        sigma = self.sigma if self.sigma is not None else 0.03 * diag
        eps = self.eps if self.eps is not None else 0.05 * diag
        coverage = self.coverage_radius if self.coverage_radius is not None else 2.0 * eps
        return replace(self, sigma=sigma, eps=eps, coverage_radius=coverage)

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the storage-catalog manifest)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "S2TParams":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    @property
    def effective_voting_strategy(self) -> str:
        """The strategy the voting phase will actually run.

        ``use_index=False`` predates ``voting_strategy`` and means "no
        pruning, evaluate every pair" — it therefore forces ``"dense"``.
        """
        if not self.use_index:
            return "dense"
        return self.voting_strategy

    def __post_init__(self) -> None:
        if self.voting_kernel not in ("gaussian", "triangular"):
            raise ValueError(f"unknown voting kernel {self.voting_kernel!r}")
        if self.voting_strategy not in ("dense", "indexed", "batched"):
            raise ValueError(f"unknown voting strategy {self.voting_strategy!r}")
        if self.segmentation_method not in ("dp", "greedy"):
            raise ValueError(f"unknown segmentation method {self.segmentation_method!r}")
        if self.min_segment_samples < 2:
            raise ValueError("min_segment_samples must be at least 2")
        if not (0.0 <= self.gain_threshold <= 1.0):
            raise ValueError("gain_threshold must be in [0, 1]")
        if self.min_cluster_support < 1:
            raise ValueError("min_cluster_support must be at least 1")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
