"""The voting phase of NaTS.

Every segment of every trajectory receives a vote from each other trajectory
that is alive during the segment's time span.  The vote decays with the
synchronous distance ``d`` between the two objects:

* Gaussian kernel:    ``exp(-d^2 / (2 sigma^2))``
* triangular kernel:  ``max(0, 1 - d / (3 sigma))``

The total vote of a segment is the sum over the other trajectories and lies
in ``[0, N-1]``; its physical meaning is "how many objects co-move with this
segment", exactly as the paper describes.

Two execution strategies are provided:

* a dense all-pairs computation (vectorised with NumPy),
* an index-pruned computation that first builds a 3D R-tree over trajectory
  bounding boxes (expanded by ``3 sigma`` in space) and only evaluates pairs
  whose boxes intersect — the in-DBMS access path of the paper and the source
  of the E6 speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory
from repro.index.rtree3d import RTree3D
from repro.s2t.params import S2TParams

__all__ = ["VotingProfile", "compute_voting", "build_trajectory_index"]


@dataclass
class VotingProfile:
    """Per-segment votes of every trajectory in a MOD."""

    votes: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    pairs_evaluated: int = 0
    pairs_pruned: int = 0
    elapsed_s: float = 0.0

    def segment_votes(self, key: tuple[str, str]) -> np.ndarray:
        """Votes of trajectory ``key``; one value per consecutive-sample segment."""
        return self.votes[key]

    def point_votes(self, key: tuple[str, str]) -> np.ndarray:
        """Votes mapped back to samples (segment votes averaged at interior samples)."""
        seg = self.votes[key]
        n = len(seg) + 1
        out = np.empty(n)
        out[0] = seg[0]
        out[-1] = seg[-1]
        if n > 2:
            out[1:-1] = (seg[:-1] + seg[1:]) / 2.0
        return out

    def total_votes(self, key: tuple[str, str]) -> float:
        """Total voting mass of a trajectory."""
        return float(np.sum(self.votes[key]))


def build_trajectory_index(mod: MOD, spatial_margin: float) -> RTree3D[tuple[str, str]]:
    """Build a 3D R-tree over trajectory bounding boxes.

    Boxes are expanded by ``spatial_margin`` so that a range probe with a
    trajectory's own (unexpanded) box finds every trajectory that could cast
    a non-negligible vote.
    """
    tree: RTree3D[tuple[str, str]] = RTree3D(max_entries=16)
    for traj in mod:
        tree.insert(traj.bbox.expand(spatial_margin, 0.0), traj.key)
    return tree


def _pairwise_votes(
    voter: Trajectory,
    target: Trajectory,
    sigma: float,
    kernel: str,
    max_samples: int,
) -> np.ndarray | None:
    """Votes cast by ``voter`` onto the samples of ``target``.

    Returns an array aligned with ``target``'s samples (zero outside the
    common lifespan), or ``None`` when the lifespans do not overlap.
    """
    common = target.period.intersection(voter.period)
    if common is None or common.duration <= 0:
        return None
    mask = (target.ts >= common.tmin) & (target.ts <= common.tmax)
    if not np.any(mask):
        return None
    ts = target.ts[mask]
    if len(ts) > max_samples:
        sel = np.linspace(0, len(ts) - 1, max_samples).astype(int)
        mask_idx = np.flatnonzero(mask)[sel]
    else:
        mask_idx = np.flatnonzero(mask)
    ts = target.ts[mask_idx]
    voter_pos = voter.positions_at(ts)
    dx = target.xs[mask_idx] - voter_pos[:, 0]
    dy = target.ys[mask_idx] - voter_pos[:, 1]
    dist = np.hypot(dx, dy)
    if kernel == "gaussian":
        vals = np.exp(-(dist**2) / (2.0 * sigma * sigma))
    else:  # triangular
        vals = np.clip(1.0 - dist / (3.0 * sigma), 0.0, None)
    out = np.zeros(target.num_points)
    out[mask_idx] = vals
    return out


def compute_voting(
    mod: MOD,
    params: S2TParams,
    index: RTree3D[tuple[str, str]] | None = None,
) -> VotingProfile:
    """Run the voting phase over the whole MOD.

    Parameters
    ----------
    mod:
        The MOD to vote over.
    params:
        Resolved S2T parameters (``sigma`` must not be ``None``).
    index:
        Optional pre-built trajectory R-tree; when ``params.use_index`` is set
        and no index is given, one is built on the fly.
    """
    start = time.perf_counter()
    params = params.resolved(mod)
    sigma = params.sigma
    assert sigma is not None

    trajectories = mod.trajectories()
    profile = VotingProfile()

    if params.use_index and index is None:
        index = build_trajectory_index(mod, spatial_margin=3.0 * sigma)

    total_pairs = 0
    evaluated = 0
    for target in trajectories:
        point_votes = np.zeros(target.num_points)
        if params.use_index and index is not None:
            candidate_keys = set(index.range_search(target.bbox))
            candidate_keys.discard(target.key)
            # Sort so the floating-point summation order (and therefore the
            # result) does not depend on set/hash iteration order.
            candidates = [mod.get(k) for k in sorted(candidate_keys)]
        else:
            candidates = [t for t in trajectories if t.key != target.key]
        total_pairs += len(trajectories) - 1
        for voter in candidates:
            votes = _pairwise_votes(
                voter, target, sigma, params.voting_kernel, params.voting_samples
            )
            evaluated += 1
            if votes is not None:
                point_votes += votes
        # Segment votes: mean of the two endpoint sample votes.
        seg_votes = (point_votes[:-1] + point_votes[1:]) / 2.0
        profile.votes[target.key] = seg_votes

    profile.pairs_evaluated = evaluated
    profile.pairs_pruned = total_pairs - evaluated
    profile.elapsed_s = time.perf_counter() - start
    return profile
