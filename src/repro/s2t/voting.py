"""The voting phase of NaTS.

Every segment of every trajectory receives a vote from each other trajectory
that is alive during the segment's time span.  The vote decays with the
synchronous distance ``d`` between the two objects:

* Gaussian kernel:    ``exp(-d^2 / (2 sigma^2))``
* triangular kernel:  ``max(0, 1 - d / (3 sigma))``

The total vote of a segment is the sum over the other trajectories and lies
in ``[0, N-1]``; its physical meaning is "how many objects co-move with this
segment", exactly as the paper describes.

Three execution strategies are provided, selected by
``S2TParams.voting_strategy``:

* ``"dense"`` — the all-pairs reference computation: a Python loop over
  (target, voter) pairs, each pair synchronised with a fresh ``np.interp``
  call.  Exact but slow; every other strategy is validated against it.
* ``"indexed"`` — the dense pair loop, but pairs are pruned with a 3D R-tree
  over trajectory bounding boxes expanded by ``3 sigma`` — the in-DBMS access
  path of the paper and the source of the E6 speedup.  Pruned pairs may carry
  (tiny) non-zero Gaussian votes, so this path is approximate at the
  ``~exp(-4.5)`` level.
* ``"batched"`` (default) — the columnar engine: a
  :class:`~repro.hermes.frame.MODFrame` is built once per MOD, candidate
  voters are pruned by the R-tree *plus* a sweep-line temporal prefilter
  (an :class:`~repro.index.interval.IntervalIndex` over trajectory
  lifespans), and all surviving voters of a target are interpolated onto the
  target's time grid in one :meth:`~repro.hermes.frame.MODFrame.positions_at_batch`
  pass, with the kernel reduced across voters by a single NumPy summation.
  The pruning margin is the *kernel support radius* (``3 sigma`` exactly for
  the triangular kernel, ``sigma * sqrt(2 ln 1e12) ≈ 7.43 sigma`` for the
  Gaussian), so batched votes match the dense reference within ``1e-8``
  while replacing the ``O(pairs)`` Python loop with ``O(targets)`` batched
  kernel calls.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.hermes.frame import MAX_BATCH_CELLS, MODFrame
from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory
from repro.index.interval import IntervalIndex
from repro.index.rtree3d import RTree3D
from repro.s2t.params import S2TParams

__all__ = [
    "VotingProfile",
    "compute_voting",
    "build_trajectory_index",
    "kernel_support_radius",
]

# Per-voter vote magnitude below which a Gaussian contribution is treated as
# zero by the batched pruning margin; the summed error over any realistic
# number of pruned voters stays well below the 1e-8 equivalence budget.
_GAUSSIAN_SUPPORT_TOL = 1e-12


@dataclass
class VotingProfile:
    """Per-segment votes of every trajectory in a MOD."""

    votes: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)
    pairs_evaluated: int = 0
    pairs_pruned: int = 0
    elapsed_s: float = 0.0
    strategy: str = "dense"

    def segment_votes(self, key: tuple[str, str]) -> np.ndarray:
        """Votes of trajectory ``key``; one value per consecutive-sample segment."""
        return self.votes[key]

    def point_votes(self, key: tuple[str, str]) -> np.ndarray:
        """Votes mapped back to samples (segment votes averaged at interior samples)."""
        seg = self.votes[key]
        n = len(seg) + 1
        out = np.empty(n)
        out[0] = seg[0]
        out[-1] = seg[-1]
        if n > 2:
            out[1:-1] = (seg[:-1] + seg[1:]) / 2.0
        return out

    def total_votes(self, key: tuple[str, str]) -> float:
        """Total voting mass of a trajectory."""
        return float(np.sum(self.votes[key]))


def kernel_support_radius(sigma: float, kernel: str) -> float:
    """Distance beyond which a voter's per-sample vote is negligible.

    The triangular kernel is exactly zero beyond ``3 sigma``.  The Gaussian
    never reaches zero, so its support radius is where the vote drops below
    ``_GAUSSIAN_SUPPORT_TOL`` — pruning at this margin keeps the batched
    strategy within the 1e-8 dense-equivalence budget.
    """
    if kernel == "triangular":
        return 3.0 * sigma
    return sigma * math.sqrt(2.0 * math.log(1.0 / _GAUSSIAN_SUPPORT_TOL))


def build_trajectory_index(mod: MOD, spatial_margin: float) -> RTree3D[tuple[str, str]]:
    """Build a 3D R-tree over trajectory bounding boxes.

    Boxes are expanded by ``spatial_margin`` so that a range probe with a
    trajectory's own (unexpanded) box finds every trajectory that could cast
    a non-negligible vote.
    """
    tree: RTree3D[tuple[str, str]] = RTree3D(max_entries=16)
    for traj in mod:
        tree.insert(traj.bbox.expand(spatial_margin, 0.0), traj.key)
    return tree


def _pairwise_votes(
    voter: Trajectory,
    target: Trajectory,
    sigma: float,
    kernel: str,
    max_samples: int,
) -> np.ndarray | None:
    """Votes cast by ``voter`` onto the samples of ``target``.

    Returns an array aligned with ``target``'s samples (zero outside the
    common lifespan), or ``None`` when the lifespans do not overlap.
    """
    common = target.period.intersection(voter.period)
    if common is None or common.duration <= 0:
        return None
    mask = (target.ts >= common.tmin) & (target.ts <= common.tmax)
    if not np.any(mask):
        return None
    ts = target.ts[mask]
    if len(ts) > max_samples:
        sel = np.linspace(0, len(ts) - 1, max_samples).astype(int)
        mask_idx = np.flatnonzero(mask)[sel]
    else:
        mask_idx = np.flatnonzero(mask)
    ts = target.ts[mask_idx]
    voter_pos = voter.positions_at(ts)
    dx = target.xs[mask_idx] - voter_pos[:, 0]
    dy = target.ys[mask_idx] - voter_pos[:, 1]
    dist = np.hypot(dx, dy)
    if kernel == "gaussian":
        vals = np.exp(-(dist**2) / (2.0 * sigma * sigma))
    else:  # triangular
        vals = np.clip(1.0 - dist / (3.0 * sigma), 0.0, None)
    out = np.zeros(target.num_points)
    out[mask_idx] = vals
    return out


# -- pairwise strategies ("dense" / "indexed") -----------------------------------


def _compute_voting_pairwise(
    mod: MOD,
    params: S2TParams,
    profile: VotingProfile,
    index: RTree3D[tuple[str, str]] | None,
) -> None:
    """The original pair-at-a-time loop; ``index`` enables R-tree pruning."""
    sigma = params.sigma
    assert sigma is not None
    trajectories = mod.trajectories()

    total_pairs = 0
    evaluated = 0
    for target in trajectories:
        point_votes = np.zeros(target.num_points)
        if index is not None:
            candidate_keys = set(index.range_search(target.bbox))
            candidate_keys.discard(target.key)
            # Sort so the floating-point summation order (and therefore the
            # result) does not depend on set/hash iteration order.
            candidates = [mod.get(k) for k in sorted(candidate_keys)]
        else:
            candidates = [t for t in trajectories if t.key != target.key]
        total_pairs += len(trajectories) - 1
        for voter in candidates:
            votes = _pairwise_votes(
                voter, target, sigma, params.voting_kernel, params.voting_samples
            )
            evaluated += 1
            if votes is not None:
                point_votes += votes
        # Segment votes: mean of the two endpoint sample votes.
        seg_votes = (point_votes[:-1] + point_votes[1:]) / 2.0
        profile.votes[target.key] = seg_votes

    profile.pairs_evaluated = evaluated
    profile.pairs_pruned = total_pairs - evaluated


# -- batched strategy --------------------------------------------------------------


def _batched_point_votes(
    frame: MODFrame,
    target_row: int,
    voter_rows: np.ndarray,
    sigma: float,
    kernel: str,
    max_samples: int,
) -> np.ndarray:
    """Summed votes of ``voter_rows`` onto every sample of ``target_row``.

    Numerically equivalent to accumulating :func:`_pairwise_votes` over the
    same voters (including its per-pair sub-sampling rule), but computed as
    one batched interpolation plus one kernel reduction.
    """
    ts = frame.ts_of(target_row)
    txs = frame.xs_of(target_row)
    tys = frame.ys_of(target_row)
    n_points = len(ts)
    point_votes = np.zeros(n_points)
    if voter_rows.size == 0:
        return point_votes

    # Positive-duration lifespan overlap (the dense path's ``common`` check).
    lo, hi = frame.lifespan_overlap(float(ts[0]), float(ts[-1]))
    alive = (hi - lo)[voter_rows] > 0
    voter_rows = voter_rows[alive]
    if voter_rows.size == 0:
        return point_votes

    inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma)
    inv_three_sigma = 1.0 / (3.0 * sigma)

    # Chunk so a single batch never materialises more than MAX_BATCH_CELLS
    # (voter, instant) cells.
    chunk = max(1, MAX_BATCH_CELLS // max(n_points, 1))
    for start in range(0, voter_rows.size, chunk):
        rows = voter_rows[start : start + chunk]
        x_v, y_v = frame.positions_at_batch(rows, ts)

        # Which target samples fall inside each voter's lifespan.
        mask = (ts[None, :] >= frame.tmins[rows, None]) & (
            ts[None, :] <= frame.tmaxs[rows, None]
        )
        counts = mask.sum(axis=1)
        # Replicate the dense path's per-pair sub-sampling: voters alive for
        # more than ``max_samples`` target samples only vote at an evenly
        # spaced subset.
        for i in np.flatnonzero(counts > max_samples):
            inside = np.flatnonzero(mask[i])
            sel = np.linspace(0, len(inside) - 1, max_samples).astype(int)
            row_mask = np.zeros(n_points, dtype=bool)
            row_mask[inside[sel]] = True
            mask[i] = row_mask

        dist = np.hypot(txs[None, :] - x_v, tys[None, :] - y_v)
        if kernel == "gaussian":
            vals = np.exp(-(dist**2) * inv_two_sigma_sq)
        else:  # triangular
            vals = np.clip(1.0 - dist * inv_three_sigma, 0.0, None)
        vals *= mask
        point_votes += vals.sum(axis=0)
    return point_votes


# Below this MOD cardinality, building the (pure-Python) R-tree costs more
# than it saves; the batched strategy then prunes with an equivalent
# vectorised scan over the frame's bounding-box table instead.  A
# caller-supplied index is always used.
_RTREE_BUILD_THRESHOLD = 512


def _compute_voting_batched(
    mod: MOD,
    params: S2TParams,
    profile: VotingProfile,
    index: RTree3D[tuple[str, str]] | None,
    frame: MODFrame | None = None,
) -> None:
    """The columnar engine: R-tree + sweep-line prefilter, batched kernels."""
    sigma = params.sigma
    assert sigma is not None
    if frame is None:
        frame = MODFrame.from_mod(mod)
    n = len(frame)
    margin = kernel_support_radius(sigma, params.voting_kernel)

    if index is None and n >= _RTREE_BUILD_THRESHOLD:
        index = build_trajectory_index(mod, spatial_margin=margin)
    # Sweep-line temporal prefilter: one bulk-loaded interval index over the
    # lifespan table answers "who is alive during the target's span?" without
    # touching the R-tree's spatial margins.
    lifespans = IntervalIndex.bulk_load(
        [(frame.period_of(row), row) for row in range(n)]
    )

    total_pairs = 0
    evaluated = 0
    for target_row in range(n):
        key = frame.keys[target_row]
        total_pairs += n - 1

        # Stage 1 — sweep-line temporal prefilter: rows alive during the
        # target's lifespan (closed bounds, like the R-tree's t-dimension).
        alive = np.fromiter(
            (row for _p, row in lifespans.overlapping(frame.period_of(target_row))),
            dtype=np.intp,
        )
        # Stage 2 — spatial pruning of the temporal survivors.
        if index is not None:
            spatial = {
                row
                for k in index.range_search(frame.bbox_of(target_row))
                if (row := frame.maybe_row_of(k)) is not None
            }
            candidates = alive[np.fromiter(
                (row in spatial for row in alive), dtype=bool, count=alive.size
            )]
        else:
            # Columnar equivalent of probing the R-tree: every surviving row
            # whose margin-expanded box intersects the target's box in x/y
            # (closed bounds, the R-tree's consistency predicate; time was
            # already handled by the prefilter).
            hit = (
                (frame.xmins[alive] - margin <= frame.xmaxs[target_row])
                & (frame.xmaxs[alive] + margin >= frame.xmins[target_row])
                & (frame.ymins[alive] - margin <= frame.ymaxs[target_row])
                & (frame.ymaxs[alive] + margin >= frame.ymins[target_row])
            )
            candidates = alive[hit]
        # Deterministic (row-order) summation, target excluded.
        voter_rows = np.sort(candidates[candidates != target_row])
        evaluated += voter_rows.size

        point_votes = _batched_point_votes(
            frame,
            target_row,
            voter_rows,
            sigma,
            params.voting_kernel,
            params.voting_samples,
        )
        profile.votes[key] = (point_votes[:-1] + point_votes[1:]) / 2.0

    profile.pairs_evaluated = evaluated
    profile.pairs_pruned = total_pairs - evaluated


# -- public entry point --------------------------------------------------------------


def compute_voting(
    mod: MOD,
    params: S2TParams,
    index: RTree3D[tuple[str, str]] | None = None,
    frame: MODFrame | None = None,
) -> VotingProfile:
    """Run the voting phase over the whole MOD.

    Parameters
    ----------
    mod:
        The MOD to vote over.
    params:
        Resolved S2T parameters (``sigma`` must not be ``None``).  The
        execution strategy is ``params.voting_strategy`` (``"dense"``,
        ``"indexed"`` or ``"batched"``); the legacy ``use_index=False`` knob
        forces ``"dense"``.
    index:
        Optional pre-built trajectory R-tree; when a pruning strategy is
        selected and no index is given, one is built on the fly (with a
        ``3 sigma`` margin for ``"indexed"``, the kernel support radius for
        ``"batched"``).  A caller-supplied index keeps its own margin, which
        then governs the pruning accuracy.
    frame:
        Optional prebuilt columnar snapshot of ``mod`` (the engine's frame
        catalog passes its cached frame here); the batched strategy then
        skips rebuilding it.
    """
    start = time.perf_counter()
    params = params.resolved(mod)
    sigma = params.sigma
    assert sigma is not None

    strategy = params.effective_voting_strategy
    profile = VotingProfile(strategy=strategy)

    if strategy == "batched":
        _compute_voting_batched(mod, params, profile, index, frame=frame)
    elif strategy == "indexed":
        if index is None:
            index = build_trajectory_index(mod, spatial_margin=3.0 * sigma)
        _compute_voting_pairwise(mod, params, profile, index)
    else:  # dense
        _compute_voting_pairwise(mod, params, profile, index=None)

    profile.elapsed_s = time.perf_counter() - start
    return profile
