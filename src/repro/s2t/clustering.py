"""GreedyClustering and outlier detection (the C and O of SaCO).

Each representative seeds one cluster.  Every other sub-trajectory joins the
closest representative — under the time-aware trajectory distance — provided
that distance is at most ``eps``; otherwise it is an outlier.  Clusters that
end up with fewer than ``min_cluster_support`` members are dissolved and
their members become outliers, matching the role of the ``γ`` parameter in
the QuT SQL signature.

The representatives are snapshotted once into a columnar
:class:`~repro.hermes.frame.MODFrame` (their sample grids concatenated), so
the per-(sub, representative) :func:`spatiotemporal_distance` loop collapses
into one :func:`spatiotemporal_distance_batch` call per sub-trajectory.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.hermes.distances import spatiotemporal_distance, spatiotemporal_distance_batch
from repro.hermes.frame import MODFrame
from repro.hermes.trajectory import SubTrajectory
from repro.s2t.params import S2TParams
from repro.s2t.result import Cluster, ClusteringResult

__all__ = [
    "greedy_clustering",
    "assign_to_representatives",
    "assign_to_representatives_batch",
]


def assign_to_representatives(
    sub: SubTrajectory,
    representatives: list[SubTrajectory],
    eps: float,
    temporal_tolerance: float = 0.0,
) -> tuple[int | None, float]:
    """Index of the closest representative within ``eps``, and the distance.

    Returns ``(None, inf)`` when no representative is reachable.  The
    temporal tolerance expands each representative's lifespan before checking
    temporal overlap, implementing the ``t`` parameter of the paper's QUT
    signature.

    This is the scalar reference; :func:`assign_to_representatives_batch`
    computes the same answer against a pre-built representative frame.
    """
    best_idx: int | None = None
    best_dist = math.inf
    for idx, rep in enumerate(representatives):
        if temporal_tolerance > 0:
            rep_period = rep.period.expand(temporal_tolerance)
            if not rep_period.overlaps(sub.period):
                continue
        dist = spatiotemporal_distance(rep.traj, sub.traj, max_samples=32)
        if dist < best_dist:
            best_dist = dist
            best_idx = idx
    if best_dist > eps:
        return None, best_dist
    return best_idx, best_dist


def assign_to_representatives_batch(
    sub: SubTrajectory,
    rep_frame: MODFrame,
    eps: float,
    temporal_tolerance: float = 0.0,
    max_samples: int = 32,
) -> tuple[int | None, float]:
    """Batched :func:`assign_to_representatives` against a representative frame.

    ``rep_frame`` holds the representatives' precomputed sample grids (row
    ``i`` = representative ``i``); distances to all of them are computed in
    one :func:`spatiotemporal_distance_batch` call.
    """
    if len(rep_frame) == 0:
        return None, math.inf
    dists = spatiotemporal_distance_batch(rep_frame, sub.traj, max_samples=max_samples)
    if temporal_tolerance > 0:
        overlaps = rep_frame.overlaps_period(sub.period, temporal_tolerance)
        dists = np.where(overlaps, dists, math.inf)
    idx = int(np.argmin(dists))
    best_dist = float(dists[idx])
    if best_dist > eps:
        return None, best_dist
    return idx, best_dist


def greedy_clustering(
    subtrajectories: list[SubTrajectory],
    representatives: list[SubTrajectory],
    params: S2TParams,
) -> tuple[ClusteringResult, float]:
    """Build clusters around the representatives.

    Returns ``(result, elapsed_seconds)``.  The returned result's ``method``
    is ``"s2t"``; the pipeline overwrites timings with the per-phase view.
    """
    start = time.perf_counter()
    eps = params.eps
    assert eps is not None, "params must be resolved before clustering"

    clusters = [
        Cluster(cluster_id=i, representative=rep, members=[rep])
        for i, rep in enumerate(representatives)
    ]
    rep_keys = {rep.key for rep in representatives}
    rep_frame = MODFrame.from_trajectories(rep.traj for rep in representatives)
    outliers: list[SubTrajectory] = []

    for sub in subtrajectories:
        if sub.key in rep_keys:
            continue
        idx, _dist = assign_to_representatives_batch(
            sub, rep_frame, eps, params.temporal_tolerance
        )
        if idx is None:
            outliers.append(sub)
        else:
            clusters[idx].members.append(sub)

    # Dissolve clusters below the support threshold.
    surviving: list[Cluster] = []
    for cluster in clusters:
        if cluster.size >= params.min_cluster_support:
            surviving.append(cluster)
        else:
            outliers.extend(cluster.members)
    # Re-number surviving clusters densely.
    for new_id, cluster in enumerate(surviving):
        cluster.cluster_id = new_id

    result = ClusteringResult(
        method="s2t", clusters=surviving, outliers=outliers, params=params
    )
    return result, time.perf_counter() - start
