"""S2T-Clustering: Sampling-based Sub-Trajectory Clustering.

The algorithm (Pelekis et al., EDBT 2017; demonstrated by the ICDE 2018
paper) has two phases:

1. **NaTS** (Neighbourhood-aware Trajectory Segmentation):

   * :mod:`repro.s2t.voting`       -- every trajectory segment is voted by the
     other trajectories according to how closely they co-move with it,
   * :mod:`repro.s2t.segmentation` -- each trajectory is split into
     sub-trajectories of homogeneous representativeness (voting level).

2. **SaCO** (Sampling, Clustering and Outlier detection):

   * :mod:`repro.s2t.sampling`     -- a greedy max-gain selection of highly
     voted, space-covering sub-trajectories as cluster representatives,
   * :mod:`repro.s2t.clustering`   -- every remaining sub-trajectory joins the
     closest representative within distance ``eps`` or becomes an outlier.

:class:`repro.s2t.pipeline.S2TClustering` chains the phases and reports
per-phase timings (benchmark E10).
"""

from repro.s2t.params import S2TParams
from repro.s2t.result import Cluster, ClusteringResult
from repro.s2t.voting import (
    VotingProfile,
    build_trajectory_index,
    compute_voting,
    kernel_support_radius,
)
from repro.s2t.segmentation import segment_by_voting, segment_mod
from repro.s2t.sampling import select_representatives
from repro.s2t.clustering import greedy_clustering
from repro.s2t.pipeline import S2TClustering

__all__ = [
    "S2TParams",
    "Cluster",
    "ClusteringResult",
    "VotingProfile",
    "build_trajectory_index",
    "compute_voting",
    "kernel_support_radius",
    "segment_by_voting",
    "segment_mod",
    "select_representatives",
    "greedy_clustering",
    "S2TClustering",
]
