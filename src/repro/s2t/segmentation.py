"""Neighbourhood-aware Trajectory Segmentation (NaTS, phase 2).

Given the per-segment voting signal of a trajectory, NaTS partitions the
trajectory into sub-trajectories of *homogeneous representativeness*: runs of
segments whose votes are similar, irrespective of the trajectory's shape.

Two segmenters are provided:

* :func:`dp_segmentation` -- optimal partitioning minimising the total
  within-segment variance plus a per-segment penalty (an MDL-style cost),
* :func:`greedy_segmentation` -- a linear-time scan that opens a new
  sub-trajectory when the voting level drifts away from the running mean.

Both return *cut points*: sample indices where a new sub-trajectory starts.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import numpy as np

from repro.hermes.frame import MODFrame
from repro.hermes.mod import MOD
from repro.hermes.trajectory import SubTrajectory, Trajectory
from repro.s2t.params import S2TParams
from repro.s2t.voting import VotingProfile

__all__ = [
    "dp_segmentation",
    "greedy_segmentation",
    "segment_by_voting",
    "segment_mod",
]


def dp_segmentation(
    votes: np.ndarray, penalty: float, min_len: int
) -> list[int]:
    """Optimal 1D segmentation of the voting signal.

    Minimises ``sum_over_segments(within-segment sum of squared deviation)
    + penalty_cost * number_of_segments`` with segments at least ``min_len``
    votes long.  ``penalty`` is expressed as a fraction of the signal's total
    variance so that it is scale-free.

    Returns the cut points as indices into the *sample* axis (a cut at ``i``
    means a new sub-trajectory starts at sample ``i``).
    """
    n = len(votes)
    if n <= min_len:
        return []
    # A (numerically) constant signal carries no segmentation information:
    # without this guard the variance-proportional penalty collapses to ~0
    # and the DP would place cuts based on floating-point dust.
    dynamic_range = float(votes.max() - votes.min())
    if dynamic_range <= 1e-9 * (float(np.abs(votes).max()) + 1.0):
        return []
    total_ss = float(np.sum((votes - votes.mean()) ** 2))
    penalty_cost = penalty * total_ss if total_ss > 0 else penalty

    # Prefix sums for O(1) within-segment cost.
    prefix = np.concatenate([[0.0], np.cumsum(votes)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(votes**2)])
    i_index = np.arange(n + 1, dtype=float)

    best = np.full(n + 1, np.inf)
    best[0] = 0.0
    back = np.zeros(n + 1, dtype=int)
    for j in range(min_len, n + 1):
        # All candidate segment starts i in [0, j - min_len] at once: the
        # within-segment cost of votes[i:j] is prefix_sq[j] - prefix_sq[i]
        # minus (prefix[j] - prefix[i])^2 / (j - i), one broadcast over the
        # prefix-sum arrays.  Unreachable starts (best[i] = inf) stay inf
        # and can never win the argmin (i = 0 is always reachable).
        i_hi = j - min_len + 1
        s = prefix[j] - prefix[:i_hi]
        sq = prefix_sq[j] - prefix_sq[:i_hi]
        costs = best[:i_hi] + (sq - s * s / (j - i_index[:i_hi])) + penalty_cost
        i = int(np.argmin(costs))
        if costs[i] < best[j]:
            best[j] = costs[i]
            back[j] = i
    # Recover the cut points.
    cuts = []
    j = n
    while j > 0:
        i = int(back[j])
        if i > 0:
            cuts.append(i)
        j = i
    cuts.reverse()
    return cuts


def greedy_segmentation(
    votes: np.ndarray, threshold_fraction: float, min_len: int
) -> list[int]:
    """Linear-time heuristic segmentation.

    A new sub-trajectory starts when the current vote deviates from the
    running segment mean by more than ``threshold_fraction`` of the signal's
    dynamic range and the current segment is at least ``min_len`` votes long.
    """
    n = len(votes)
    if n <= min_len:
        return []
    dynamic_range = float(votes.max() - votes.min())
    if dynamic_range <= 0:
        return []
    threshold = threshold_fraction * dynamic_range
    cuts = []
    seg_start = 0
    running_sum = votes[0]
    for i in range(1, n):
        seg_len = i - seg_start
        mean = running_sum / seg_len
        if seg_len >= min_len and abs(votes[i] - mean) > threshold and n - i >= min_len:
            cuts.append(i)
            seg_start = i
            running_sum = votes[i]
        else:
            running_sum += votes[i]
    return cuts


def segment_by_voting(
    traj: Trajectory, votes: np.ndarray, params: S2TParams
) -> list[SubTrajectory]:
    """Split one trajectory into sub-trajectories using its voting signal."""
    if params.segmentation_method == "dp":
        cuts = dp_segmentation(
            votes, penalty=params.segmentation_penalty, min_len=params.min_segment_samples
        )
    else:
        # The greedy threshold reuses the DP penalty fraction as "drift" size:
        # larger penalty -> fewer segments in both methods.
        cuts = greedy_segmentation(
            votes,
            threshold_fraction=max(params.segmentation_penalty * 4.0, 0.1),
            min_len=params.min_segment_samples,
        )
    return traj.split_at_indices(cuts)


def segment_mod(
    mod: MOD,
    profile: VotingProfile,
    params: S2TParams,
    frame: MODFrame | None = None,
) -> tuple[list[SubTrajectory], dict[tuple[str, str, int, int], float], float]:
    """Segment every trajectory of a MOD.

    Returns ``(subtrajectories, voting_mass, elapsed_seconds)`` where
    ``voting_mass`` maps each sub-trajectory key to the mean vote of its
    segments — the representativeness score consumed by the sampling phase.

    When ``frame`` (a columnar snapshot of ``mod``) is given, trajectories
    are read straight off the frame's columns (zero-copy views) in row
    order — the frame-native path the pipeline uses so the per-``fit`` frame
    is built once and shared across phases.
    """
    start = time.perf_counter()
    subtrajectories: list[SubTrajectory] = []
    voting_mass: dict[tuple[str, str, int, int], float] = {}
    trajectories: Iterable[Trajectory]
    if frame is not None:
        trajectories = (frame.trajectory_of(row) for row in range(len(frame)))
    else:
        trajectories = mod
    for traj in trajectories:
        votes = profile.segment_votes(traj.key)
        subs = segment_by_voting(traj, votes, params)
        for sub in subs:
            seg_slice = votes[sub.start_idx : sub.end_idx]
            mass = float(np.mean(seg_slice)) if len(seg_slice) else 0.0
            voting_mass[sub.key] = mass
            subtrajectories.append(sub)
    return subtrajectories, voting_mass, time.perf_counter() - start
