"""Point-level ground truth for synthetic MODs.

A ground truth assigns to every trajectory a sequence of per-sample labels:
the flow/lane the object follows at that instant, or ``None`` when it moves
independently (noise / outlier behaviour).  Quality metrics compare these
labels against the per-sample cluster assignment induced by a clustering
result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GroundTruth"]


@dataclass
class GroundTruth:
    """Per-sample flow labels for each trajectory of a MOD."""

    labels: dict[tuple[str, str], np.ndarray] = field(default_factory=dict)

    def set_labels(self, key: tuple[str, str], labels: np.ndarray) -> None:
        """Record the per-sample label array for trajectory ``key``."""
        self.labels[key] = np.asarray(labels, dtype=object)

    def labels_for(self, key: tuple[str, str]) -> np.ndarray:
        """Per-sample labels of a trajectory (``None`` entries mean noise)."""
        return self.labels[key]

    def flow_ids(self) -> list[str]:
        """Distinct non-noise flow labels present in the ground truth."""
        out: set[str] = set()
        for arr in self.labels.values():
            out.update(lbl for lbl in arr if lbl is not None)
        return sorted(out)

    def point_labels(self) -> list[tuple[tuple[str, str], int, object]]:
        """Flatten to ``(traj_key, sample_index, label)`` triples."""
        flat = []
        for key, arr in self.labels.items():
            for i, lbl in enumerate(arr):
                flat.append((key, i, lbl))
        return flat
