"""Composable degradation profiles for the synthetic scenarios.

A *degradation profile* is a named, seeded transform of a ``(MOD,
GroundTruth)`` pair: it perturbs the clean scenario the way real tracking
infrastructure would — GPS noise, dropped fixes, rush-hour burst arrivals,
out-of-order timestamps — while keeping the per-sample ground-truth labels
aligned with the surviving samples.  The quality harness
(:mod:`repro.eval.quality`) sweeps every scenario under every profile, so a
future optimisation that only holds up on clean data turns the matrix red.

Invariants every profile maintains (pinned by
``tests/datagen/test_profiles.py``):

* trajectory **keys** are preserved — no trajectory appears or disappears,
* every trajectory keeps at least two samples with strictly increasing
  timestamps (the :class:`~repro.hermes.trajectory.Trajectory` contract),
* ground-truth labels stay **index-aligned**: dropped samples drop their
  label, reordered samples carry their label along,
* the transform is a pure function of ``(mod, truth, seed)`` — same seed,
  same bytes.

Profiles compose with ``+`` (left to right) and parse from compact CLI
specs (``"gps_noise:sigma_fraction=0.02+dropout"``) via
:func:`parse_profile`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.datagen.truth import GroundTruth
from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory

__all__ = [
    "DegradationProfile",
    "PROFILES",
    "clean",
    "gps_noise",
    "dropout",
    "rush_hour",
    "out_of_order_jitter",
    "parse_profile",
    "point_stream",
]

#: One degradation step: ``(mod, truth, rng) -> (mod, truth)``.
Step = Callable[[MOD, GroundTruth, np.random.Generator], tuple[MOD, GroundTruth]]


@dataclass(frozen=True)
class DegradationProfile:
    """A named sequence of degradation steps applied left to right.

    ``apply`` owns the randomness: it derives one
    :func:`numpy.random.default_rng` stream from the caller's seed and
    threads it through every step, so a composed profile is exactly as
    deterministic as a single one.
    """

    name: str
    steps: tuple[Step, ...] = ()

    def apply(self, mod: MOD, truth: GroundTruth, seed: int) -> tuple[MOD, GroundTruth]:
        """Run every step over ``(mod, truth)`` under one seeded RNG."""
        rng = np.random.default_rng(seed)
        for step in self.steps:
            mod, truth = step(mod, truth, rng)
        return mod, truth

    def __add__(self, other: DegradationProfile) -> DegradationProfile:
        """Compose two profiles; the right operand runs after the left."""
        return DegradationProfile(
            name=f"{self.name}+{other.name}", steps=self.steps + other.steps
        )


def _rebuild(
    mod: MOD,
    truth: GroundTruth,
    per_traj: Callable[
        [Trajectory, np.ndarray, np.random.Generator], tuple[Trajectory, np.ndarray]
    ],
    rng: np.random.Generator,
) -> tuple[MOD, GroundTruth]:
    """Apply a per-trajectory transform, preserving key order and labels."""
    out_mod = MOD(name=mod.name)
    out_truth = GroundTruth()
    for traj in mod:
        labels = truth.labels_for(traj.key)
        new_traj, new_labels = per_traj(traj, labels, rng)
        if len(new_labels) != new_traj.num_points:
            raise AssertionError("degradation step broke label alignment")
        out_mod.add(new_traj)
        out_truth.set_labels(new_traj.key, new_labels)
    return out_mod, out_truth


def clean() -> DegradationProfile:
    """The identity profile — the undegraded scenario as generated."""
    return DegradationProfile(name="clean", steps=())


def gps_noise(sigma_fraction: float = 0.01) -> DegradationProfile:
    """Additive white position noise on every sample.

    ``sigma_fraction`` scales with the dataset: the noise deviation is that
    fraction of the MOD's spatial diagonal, so the same profile degrades a
    500-unit maritime area and a 50-unit urban grid comparably.  Timestamps,
    keys and labels are untouched.
    """

    def step(
        mod: MOD, truth: GroundTruth, rng: np.random.Generator
    ) -> tuple[MOD, GroundTruth]:
        bbox = mod.bbox
        sigma = sigma_fraction * float(np.hypot(bbox.dx, bbox.dy))

        def perturb(
            traj: Trajectory, labels: np.ndarray, rng: np.random.Generator
        ) -> tuple[Trajectory, np.ndarray]:
            xs = traj.xs + rng.normal(0.0, sigma, traj.num_points)
            ys = traj.ys + rng.normal(0.0, sigma, traj.num_points)
            return Trajectory(traj.obj_id, traj.traj_id, xs, ys, traj.ts), labels

        return _rebuild(mod, truth, perturb, rng)

    return DegradationProfile(name="gps_noise", steps=(step,))


def dropout(fraction: float = 0.25, min_points: int = 4) -> DegradationProfile:
    """Drop a random ``fraction`` of each trajectory's samples.

    Never produces an empty (or single-sample) trajectory: when the draw
    would leave fewer than ``max(min_points, 2)`` samples, a random subset
    of that size is force-kept instead.  Surviving samples keep their
    original order and their ground-truth labels.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("dropout fraction must be in [0, 1)")
    keep_floor = max(int(min_points), 2)

    def step(
        mod: MOD, truth: GroundTruth, rng: np.random.Generator
    ) -> tuple[MOD, GroundTruth]:
        def drop(
            traj: Trajectory, labels: np.ndarray, rng: np.random.Generator
        ) -> tuple[Trajectory, np.ndarray]:
            n = traj.num_points
            keep = rng.random(n) >= fraction
            if int(keep.sum()) < min(keep_floor, n):
                forced = rng.choice(n, size=min(keep_floor, n), replace=False)
                keep = np.zeros(n, dtype=bool)
                keep[forced] = True
            kept = np.flatnonzero(keep)
            return (
                Trajectory(
                    traj.obj_id, traj.traj_id, traj.xs[kept], traj.ys[kept], traj.ts[kept]
                ),
                labels[kept],
            )

        return _rebuild(mod, truth, drop, rng)

    return DegradationProfile(name="dropout", steps=(step,))


def rush_hour(n_bursts: int = 3, burst_width_fraction: float = 0.04) -> DegradationProfile:
    """Re-time whole trajectories into a few arrival bursts.

    Models rush-hour traffic: instead of start times staggered uniformly
    over the scenario's warm-up window, every trajectory is shifted so it
    begins inside one of ``n_bursts`` narrow windows near the start of the
    dataset's lifespan.  The shift moves the whole timestamp array rigidly,
    so co-movement *within* a burst is preserved and per-index labels stay
    valid; temporal density — what burst arrival stresses — goes way up.
    """
    if n_bursts < 1:
        raise ValueError("need at least one burst")

    def step(
        mod: MOD, truth: GroundTruth, rng: np.random.Generator
    ) -> tuple[MOD, GroundTruth]:
        period = mod.period
        duration = max(period.duration, 1e-9)
        centers = period.tmin + duration * 0.3 * (
            (np.arange(n_bursts) + 0.5) / n_bursts
        )
        width = duration * burst_width_fraction

        def shift(
            traj: Trajectory, labels: np.ndarray, rng: np.random.Generator
        ) -> tuple[Trajectory, np.ndarray]:
            center = centers[int(rng.integers(n_bursts))]
            new_start = center + rng.uniform(-0.5, 0.5) * width
            delta = new_start - float(traj.ts[0])
            return (
                Trajectory(traj.obj_id, traj.traj_id, traj.xs, traj.ys, traj.ts + delta),
                labels,
            )

        return _rebuild(mod, truth, shift, rng)

    return DegradationProfile(name="rush_hour", steps=(step,))


def out_of_order_jitter(jitter_fraction: float = 0.6) -> DegradationProfile:
    """Perturb timestamps so samples arrive out of their recorded order.

    Each timestamp is jittered by centred noise scaled to
    ``jitter_fraction`` of the trajectory's median sampling interval, then
    the samples are re-sorted by the jittered time — exactly what the
    ingest path does to a late-arriving fix.  Positions and labels travel
    with their sample.  The rare exact tie after jittering keeps the
    first-arriving sample, matching the
    :class:`~repro.core.ingest.AppendBuffer` contract.
    """

    def step(
        mod: MOD, truth: GroundTruth, rng: np.random.Generator
    ) -> tuple[MOD, GroundTruth]:
        def jitter(
            traj: Trajectory, labels: np.ndarray, rng: np.random.Generator
        ) -> tuple[Trajectory, np.ndarray]:
            dt = float(np.median(np.diff(traj.ts)))
            ts = traj.ts + rng.normal(0.0, jitter_fraction * dt, traj.num_points)
            order = np.argsort(ts, kind="stable")
            ts, xs, ys = ts[order], traj.xs[order], traj.ys[order]
            labels = labels[order]
            # Strictly increasing: drop later samples of an exact tie.
            keep = np.concatenate([[True], np.diff(ts) > 0])
            if int(keep.sum()) < 2:  # pragma: no cover - measure-zero fallback
                return traj, labels
            return (
                Trajectory(traj.obj_id, traj.traj_id, xs[keep], ys[keep], ts[keep]),
                labels[keep],
            )

        return _rebuild(mod, truth, jitter, rng)

    return DegradationProfile(name="jitter", steps=(step,))


#: Registry of profile factories by CLI/harness name.  Each entry is a
#: zero-or-keyword-argument callable returning a fresh profile, so specs can
#: override parameters (``dropout:fraction=0.4``).
PROFILES: dict[str, Callable[..., DegradationProfile]] = {
    "clean": clean,
    "gps_noise": gps_noise,
    "dropout": dropout,
    "rush_hour": rush_hour,
    "jitter": out_of_order_jitter,
}


def parse_profile(spec: str) -> DegradationProfile:
    """Build a profile from a compact spec string.

    Grammar: ``name[:key=value[,key=value...]]`` composed with ``+``,
    e.g. ``"gps_noise:sigma_fraction=0.02+dropout:fraction=0.4"``.
    Values parse as ``int`` when possible, then ``float``, else stay
    strings.  Unknown names raise ``ValueError`` listing the registry.
    """
    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise ValueError("empty profile spec")
    profile: DegradationProfile | None = None
    for part in parts:
        name, _, arg_text = part.partition(":")
        if name not in PROFILES:
            raise ValueError(
                f"unknown profile {name!r}; available: {', '.join(sorted(PROFILES))}"
            )
        kwargs: dict[str, object] = {}
        if arg_text:
            for pair in arg_text.split(","):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(f"profile argument {pair!r} is not key=value")
                kwargs[key.strip()] = _coerce(value.strip())
        piece = PROFILES[name](**kwargs)
        profile = piece if profile is None else profile + piece
    assert profile is not None
    return profile


def _coerce(text: str) -> object:
    """``int`` if possible, then ``float``, else the raw string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def point_stream(
    mod: MOD, seed: int
) -> Iterator[tuple[str, str, float, float, float]]:
    """The MOD's samples as a globally shuffled arrival stream.

    Yields ``(obj_id, traj_id, x, y, t)`` records in a seeded random order
    across *all* trajectories — the worst-case arrival order for the ingest
    path.  Feeding the stream through
    :class:`~repro.core.ingest.AppendBuffer` must reassemble the original
    trajectories exactly (pinned by the profile test suite).
    """
    records: list[tuple[str, str, float, float, float]] = []
    for traj in mod:
        for i in range(traj.num_points):
            records.append(
                (traj.obj_id, traj.traj_id, float(traj.xs[i]), float(traj.ys[i]), float(traj.ts[i]))
            )
    rng = np.random.default_rng(seed)
    for idx in rng.permutation(len(records)):
        yield records[int(idx)]
