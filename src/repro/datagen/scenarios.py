"""Synthetic MOD scenarios with ground truth.

Every scenario returns ``(MOD, GroundTruth)``.  The aircraft scenario is the
one matching the paper's demonstration dataset (approach corridors towards
airports, optionally with holding loops); the urban and maritime scenarios
exercise the "other domains" the paper mentions.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.paths import Path, circle_path, concatenate_paths
from repro.datagen.truth import GroundTruth
from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory

__all__ = [
    "lane_scenario",
    "aircraft_scenario",
    "urban_scenario",
    "maritime_scenario",
    "orbit_scenario",
]


def _follow_path(
    rng: np.random.Generator,
    path: Path,
    t_start: float,
    duration: float,
    n_samples: int,
    lateral_noise: float,
    speed_jitter: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate samples of one object travelling along ``path``.

    Returns ``(xs, ys, ts)``.  The object's progress along the path is a
    monotone but jittered function of time, so objects on the same path are
    roughly aligned in time without moving in lockstep.
    """
    ts = np.linspace(t_start, t_start + duration, n_samples)
    # Monotone progress with speed jitter.
    increments = rng.normal(1.0, speed_jitter, n_samples - 1)
    increments = np.clip(increments, 0.05, None)
    progress = np.concatenate([[0.0], np.cumsum(increments)])
    progress /= progress[-1]
    pos = path.sample(progress)
    # Lateral deviation is smooth (a moving-average of white noise), not
    # per-sample jitter: a vehicle drifts off the centreline gradually, it
    # does not teleport sideways between consecutive GPS fixes.
    white = rng.normal(0.0, lateral_noise, size=(n_samples + 8, 2))
    kernel = np.ones(9) / 9.0
    smooth = np.column_stack(
        [np.convolve(white[:, 0], kernel, mode="valid"), np.convolve(white[:, 1], kernel, mode="valid")]
    )
    # Restore the requested deviation magnitude lost by averaging.
    smooth *= 3.0
    pos = pos + smooth[:n_samples]
    return pos[:, 0], pos[:, 1], ts


def _random_walk(
    rng: np.random.Generator,
    bbox: tuple[float, float, float, float],
    t_start: float,
    duration: float,
    n_samples: int,
    step_scale: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate an outlier trajectory: a bounded random walk."""
    xmin, ymin, xmax, ymax = bbox
    ts = np.linspace(t_start, t_start + duration, n_samples)
    xs = np.empty(n_samples)
    ys = np.empty(n_samples)
    xs[0] = rng.uniform(xmin, xmax)
    ys[0] = rng.uniform(ymin, ymax)
    for i in range(1, n_samples):
        xs[i] = np.clip(xs[i - 1] + rng.normal(0, step_scale), xmin, xmax)
        ys[i] = np.clip(ys[i - 1] + rng.normal(0, step_scale), ymin, ymax)
    return xs, ys, ts


def lane_scenario(
    n_trajectories: int = 100,
    n_lanes: int = 4,
    outlier_fraction: float = 0.1,
    switcher_fraction: float = 0.2,
    duration: float = 1000.0,
    n_samples: int = 60,
    lateral_noise: float = 1.0,
    area: float = 100.0,
    seed: int | None = 0,
    name: str = "lanes",
) -> tuple[MOD, GroundTruth]:
    """Generic lane scenario: ``n_lanes`` straightish corridors across an area.

    A fraction of objects ("switchers") follow one lane for the first half of
    their lifespan and a different lane afterwards — exactly the behaviour
    whole-trajectory clustering cannot represent but sub-trajectory
    clustering can.  ``outlier_fraction`` of the objects wander randomly.

    Returns ``(mod, ground_truth)`` where the ground truth labels every
    sample with its lane id or ``None`` for outliers.
    """
    rng = np.random.default_rng(seed)
    mod = MOD(name=name)
    truth = GroundTruth()

    lanes: list[Path] = []
    for k in range(n_lanes):
        # Lanes sweep across the area at different offsets/orientations.
        offset = (k + 0.5) * area / n_lanes
        if k % 2 == 0:
            waypoints = np.array(
                [[0.0, offset], [area * 0.4, offset + area * 0.05], [area, offset]]
            )
        else:
            waypoints = np.array(
                [[offset, 0.0], [offset - area * 0.05, area * 0.5], [offset, area]]
            )
        lanes.append(Path(waypoints))

    n_outliers = int(round(n_trajectories * outlier_fraction))
    n_switchers = int(round(n_trajectories * switcher_fraction))
    n_followers = n_trajectories - n_outliers - n_switchers

    idx = 0
    for i in range(n_followers):
        lane = int(rng.integers(n_lanes))
        t_start = rng.uniform(0.0, duration * 0.2)
        dur = duration * rng.uniform(0.6, 0.8)
        xs, ys, ts = _follow_path(
            rng, lanes[lane], t_start, dur, n_samples, lateral_noise, 0.15
        )
        traj = Trajectory(f"obj{idx}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([f"lane{lane}"] * n_samples, dtype=object))
        idx += 1

    for i in range(n_switchers):
        lane_a, lane_b = rng.choice(n_lanes, size=2, replace=False)
        t_start = rng.uniform(0.0, duration * 0.2)
        dur = duration * rng.uniform(0.6, 0.8)
        half = n_samples // 2
        xs_a, ys_a, ts_a = _follow_path(
            rng, lanes[int(lane_a)], t_start, dur / 2, half, lateral_noise, 0.15
        )
        xs_b, ys_b, ts_b = _follow_path(
            rng,
            lanes[int(lane_b)],
            t_start + dur / 2 + 1e-6,
            dur / 2,
            n_samples - half,
            lateral_noise,
            0.15,
        )
        xs = np.concatenate([xs_a, xs_b])
        ys = np.concatenate([ys_a, ys_b])
        ts = np.concatenate([ts_a, ts_b])
        traj = Trajectory(f"obj{idx}", "0", xs, ys, ts)
        mod.add(traj)
        labels = np.array(
            [f"lane{int(lane_a)}"] * half + [f"lane{int(lane_b)}"] * (n_samples - half),
            dtype=object,
        )
        truth.set_labels(traj.key, labels)
        idx += 1

    for i in range(n_outliers):
        t_start = rng.uniform(0.0, duration * 0.3)
        dur = duration * rng.uniform(0.4, 0.7)
        xs, ys, ts = _random_walk(
            rng, (0.0, 0.0, area, area), t_start, dur, n_samples, area * 0.05
        )
        traj = Trajectory(f"obj{idx}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([None] * n_samples, dtype=object))
        idx += 1

    return mod, truth


def aircraft_scenario(
    n_trajectories: int = 120,
    n_corridors: int = 3,
    holding_fraction: float = 0.25,
    outlier_fraction: float = 0.08,
    duration: float = 3600.0,
    n_samples: int = 80,
    area: float = 200.0,
    seed: int | None = 0,
    name: str = "flights",
) -> tuple[MOD, GroundTruth]:
    """Aircraft approaching airports of a metropolitan area.

    Mirrors the paper's demonstration dataset: a few approach corridors
    converge towards airport locations; a fraction of flights perform a
    holding pattern (one or two loops) before the final approach — the
    pattern visualised in the paper's Figure 4.

    Ground-truth labels are ``corridor<k>`` while following the corridor
    (including during the holding loop, which happens on the corridor) and
    ``None`` for outliers.
    """
    rng = np.random.default_rng(seed)
    mod = MOD(name=name)
    truth = GroundTruth()

    airports = [
        (area * 0.5, area * 0.45),
        (area * 0.55, area * 0.6),
        (area * 0.42, area * 0.58),
    ]
    corridors: list[Path] = []
    holding_centers: list[tuple[float, float]] = []
    for k in range(n_corridors):
        airport = airports[k % len(airports)]
        angle = 2.0 * np.pi * k / n_corridors + 0.3
        entry = (
            airport[0] + area * 0.45 * np.cos(angle),
            airport[1] + area * 0.45 * np.sin(angle),
        )
        mid = (
            airport[0] + area * 0.2 * np.cos(angle + 0.15),
            airport[1] + area * 0.2 * np.sin(angle + 0.15),
        )
        corridors.append(Path(np.array([entry, mid, airport])))
        holding_centers.append(mid)

    n_outliers = int(round(n_trajectories * outlier_fraction))
    n_flights = n_trajectories - n_outliers

    for i in range(n_flights):
        corridor_idx = int(rng.integers(n_corridors))
        corridor = corridors[corridor_idx]
        has_holding = rng.random() < holding_fraction
        t_start = rng.uniform(0.0, duration * 0.3)
        dur = duration * rng.uniform(0.3, 0.5)
        if has_holding:
            # Approach the holding fix, loop, then final approach.
            loop = circle_path(
                holding_centers[corridor_idx],
                radius=area * 0.04,
                n_turns=rng.uniform(1.0, 2.0),
                n_points=30,
            )
            entry_leg = Path(corridor.waypoints[:2])
            final_leg = Path(corridor.waypoints[1:])
            full = concatenate_paths(entry_leg, loop, final_leg)
        else:
            full = corridor
        xs, ys, ts = _follow_path(
            rng, full, t_start, dur, n_samples, lateral_noise=area * 0.005, speed_jitter=0.2
        )
        traj = Trajectory(f"flight{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(
            traj.key, np.array([f"corridor{corridor_idx}"] * n_samples, dtype=object)
        )

    for i in range(n_outliers):
        t_start = rng.uniform(0.0, duration * 0.4)
        dur = duration * rng.uniform(0.2, 0.5)
        xs, ys, ts = _random_walk(
            rng, (0.0, 0.0, area, area), t_start, dur, n_samples, area * 0.04
        )
        traj = Trajectory(f"ga{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([None] * n_samples, dtype=object))

    return mod, truth


def orbit_scenario(
    n_trajectories: int = 60,
    n_sites: int = 3,
    outlier_fraction: float = 0.1,
    transit_fraction: float = 0.2,
    duration: float = 2400.0,
    n_samples: int = 60,
    area: float = 120.0,
    seed: int | None = 0,
    name: str = "orbit",
) -> tuple[MOD, GroundTruth]:
    """Orbit/survey scenario: drones circling survey sites.

    ``n_sites`` survey sites are scattered over the area; most objects fly
    repeated loops around one site (label ``site<k>``).  A
    ``transit_fraction`` of the objects survey one site for the first half
    of their lifespan and relocate to another for the second half — the
    mid-trajectory label switch only sub-trajectory clustering can
    represent.  ``outlier_fraction`` of the objects wander randomly.
    """
    rng = np.random.default_rng(seed)
    mod = MOD(name=name)
    truth = GroundTruth()

    sites: list[tuple[float, float]] = []
    for k in range(n_sites):
        angle = 2.0 * np.pi * k / n_sites + 0.7
        sites.append(
            (
                area * 0.5 + area * 0.3 * np.cos(angle),
                area * 0.5 + area * 0.3 * np.sin(angle),
            )
        )
    radius = area * 0.08

    def orbit_path(site_idx: int, turns: float) -> Path:
        return circle_path(
            sites[site_idx], radius=radius, n_turns=turns, n_points=40,
            start_angle=2.0 * np.pi * site_idx / n_sites,
        )

    n_outliers = int(round(n_trajectories * outlier_fraction))
    n_transits = int(round(n_trajectories * transit_fraction))
    n_loiterers = n_trajectories - n_outliers - n_transits

    idx = 0
    for _ in range(n_loiterers):
        site = int(rng.integers(n_sites))
        t_start = rng.uniform(0.0, duration * 0.25)
        dur = duration * rng.uniform(0.5, 0.7)
        xs, ys, ts = _follow_path(
            rng, orbit_path(site, rng.uniform(2.0, 3.5)), t_start, dur, n_samples,
            lateral_noise=radius * 0.05, speed_jitter=0.1,
        )
        traj = Trajectory(f"drone{idx}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([f"site{site}"] * n_samples, dtype=object))
        idx += 1

    for _ in range(n_transits):
        site_a, site_b = rng.choice(n_sites, size=2, replace=False)
        t_start = rng.uniform(0.0, duration * 0.25)
        dur = duration * rng.uniform(0.5, 0.7)
        half = n_samples // 2
        xs_a, ys_a, ts_a = _follow_path(
            rng, orbit_path(int(site_a), rng.uniform(1.5, 2.5)), t_start, dur / 2,
            half, lateral_noise=radius * 0.05, speed_jitter=0.1,
        )
        xs_b, ys_b, ts_b = _follow_path(
            rng, orbit_path(int(site_b), rng.uniform(1.5, 2.5)),
            t_start + dur / 2 + 1e-6, dur / 2, n_samples - half,
            lateral_noise=radius * 0.05, speed_jitter=0.1,
        )
        traj = Trajectory(
            f"drone{idx}", "0",
            np.concatenate([xs_a, xs_b]),
            np.concatenate([ys_a, ys_b]),
            np.concatenate([ts_a, ts_b]),
        )
        mod.add(traj)
        labels = np.array(
            [f"site{int(site_a)}"] * half + [f"site{int(site_b)}"] * (n_samples - half),
            dtype=object,
        )
        truth.set_labels(traj.key, labels)
        idx += 1

    for _ in range(n_outliers):
        t_start = rng.uniform(0.0, duration * 0.3)
        dur = duration * rng.uniform(0.4, 0.6)
        xs, ys, ts = _random_walk(
            rng, (0.0, 0.0, area, area), t_start, dur, n_samples, area * 0.04
        )
        traj = Trajectory(f"bird{idx}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([None] * n_samples, dtype=object))
        idx += 1

    return mod, truth


def urban_scenario(
    n_trajectories: int = 150,
    grid_size: int = 5,
    outlier_fraction: float = 0.1,
    duration: float = 1800.0,
    n_samples: int = 50,
    area: float = 50.0,
    seed: int | None = 0,
    name: str = "urban",
) -> tuple[MOD, GroundTruth]:
    """Urban traffic: vehicles following routes on a street grid.

    Routes are L-shaped paths on a ``grid_size`` x ``grid_size`` street grid;
    vehicles on the same route form a flow.
    """
    rng = np.random.default_rng(seed)
    mod = MOD(name=name)
    truth = GroundTruth()

    cell = area / grid_size
    routes: list[Path] = []
    n_routes = max(3, grid_size)
    for k in range(n_routes):
        row = (k % grid_size + 0.5) * cell
        col = ((k * 2 + 1) % grid_size + 0.5) * cell
        # Travel along the row, then turn onto the column.
        waypoints = np.array([[0.0, row], [col, row], [col, area]])
        routes.append(Path(waypoints))

    n_outliers = int(round(n_trajectories * outlier_fraction))
    n_vehicles = n_trajectories - n_outliers

    for i in range(n_vehicles):
        route_idx = int(rng.integers(n_routes))
        t_start = rng.uniform(0.0, duration * 0.4)
        dur = duration * rng.uniform(0.2, 0.4)
        xs, ys, ts = _follow_path(
            rng, routes[route_idx], t_start, dur, n_samples, lateral_noise=cell * 0.05,
            speed_jitter=0.25,
        )
        traj = Trajectory(f"veh{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([f"route{route_idx}"] * n_samples, dtype=object))

    for i in range(n_outliers):
        t_start = rng.uniform(0.0, duration * 0.5)
        dur = duration * rng.uniform(0.2, 0.4)
        xs, ys, ts = _random_walk(
            rng, (0.0, 0.0, area, area), t_start, dur, n_samples, cell * 0.5
        )
        traj = Trajectory(f"taxi{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([None] * n_samples, dtype=object))

    return mod, truth


def maritime_scenario(
    n_trajectories: int = 80,
    n_lanes: int = 3,
    outlier_fraction: float = 0.1,
    duration: float = 7200.0,
    n_samples: int = 60,
    area: float = 500.0,
    seed: int | None = 0,
    name: str = "maritime",
) -> tuple[MOD, GroundTruth]:
    """Maritime traffic: vessels following long, gently curved shipping lanes."""
    rng = np.random.default_rng(seed)
    mod = MOD(name=name)
    truth = GroundTruth()

    lanes: list[Path] = []
    for k in range(n_lanes):
        y0 = area * (0.2 + 0.6 * k / max(1, n_lanes - 1))
        xs = np.linspace(0.0, area, 8)
        ys = y0 + area * 0.05 * np.sin(np.linspace(0, np.pi, 8) + k)
        lanes.append(Path(np.column_stack([xs, ys])))

    n_outliers = int(round(n_trajectories * outlier_fraction))
    n_vessels = n_trajectories - n_outliers

    for i in range(n_vessels):
        lane_idx = int(rng.integers(n_lanes))
        lane = lanes[lane_idx] if rng.random() < 0.5 else lanes[lane_idx].reversed()
        t_start = rng.uniform(0.0, duration * 0.3)
        dur = duration * rng.uniform(0.5, 0.7)
        xs, ys, ts = _follow_path(
            rng, lane, t_start, dur, n_samples, lateral_noise=area * 0.005, speed_jitter=0.1
        )
        traj = Trajectory(f"vessel{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([f"lane{lane_idx}"] * n_samples, dtype=object))

    for i in range(n_outliers):
        t_start = rng.uniform(0.0, duration * 0.4)
        dur = duration * rng.uniform(0.3, 0.6)
        xs, ys, ts = _random_walk(
            rng, (0.0, 0.0, area, area), t_start, dur, n_samples, area * 0.02
        )
        traj = Trajectory(f"fishing{i}", "0", xs, ys, ts)
        mod.add(traj)
        truth.set_labels(traj.key, np.array([None] * n_samples, dtype=object))

    return mod, truth
