"""Synthetic MOD generators.

The real dataset shown in the paper (aircraft approaching London airports) is
not publicly available, so the scenarios here generate MODs with the same
structural properties the clustering algorithms exploit:

* lanes / corridors of objects that co-move for part of their lifespan,
* temporally overlapping but spatially distinct flows,
* holding-pattern loops before landing (for Figure 4),
* random outliers that belong to no flow.

Each generator also returns a point-level :class:`~repro.datagen.truth.GroundTruth`
used by the quality metrics in :mod:`repro.eval`.
"""

from repro.datagen.truth import GroundTruth
from repro.datagen.scenarios import (
    aircraft_scenario,
    maritime_scenario,
    urban_scenario,
    lane_scenario,
)

__all__ = [
    "GroundTruth",
    "aircraft_scenario",
    "maritime_scenario",
    "urban_scenario",
    "lane_scenario",
]
