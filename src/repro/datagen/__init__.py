"""Synthetic MOD generators.

The real dataset shown in the paper (aircraft approaching London airports) is
not publicly available, so the scenarios here generate MODs with the same
structural properties the clustering algorithms exploit:

* lanes / corridors of objects that co-move for part of their lifespan,
* temporally overlapping but spatially distinct flows,
* holding-pattern loops before landing (for Figure 4),
* survey orbits around sites, with mid-lifespan relocations,
* random outliers that belong to no flow.

Each generator also returns a point-level :class:`~repro.datagen.truth.GroundTruth`
used by the quality metrics in :mod:`repro.eval`.  The degradation profiles
in :mod:`repro.datagen.profiles` (GPS noise, dropout, rush-hour bursts,
out-of-order jitter) perturb any scenario while keeping its labels aligned;
the ``repro-datagen`` CLI exposes both knobs from the command line.
"""

from repro.datagen.truth import GroundTruth
from repro.datagen.scenarios import (
    aircraft_scenario,
    maritime_scenario,
    orbit_scenario,
    urban_scenario,
    lane_scenario,
)
from repro.datagen.profiles import (
    PROFILES,
    DegradationProfile,
    parse_profile,
)

__all__ = [
    "GroundTruth",
    "aircraft_scenario",
    "maritime_scenario",
    "orbit_scenario",
    "urban_scenario",
    "lane_scenario",
    "PROFILES",
    "DegradationProfile",
    "parse_profile",
]
