"""Geometric path primitives used by the scenario generators.

A *path* is a 2D polyline with a travel duration.  The generators place
moving objects on paths: each object follows the path with lateral noise,
speed jitter and a staggered start time, producing trajectories that co-move
with the other objects on the same path — the "flows" that sub-trajectory
clustering should recover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Path", "circle_path", "concatenate_paths"]


@dataclass(frozen=True)
class Path:
    """A 2D polyline parameterised by arc length."""

    waypoints: np.ndarray  # shape (k, 2)

    def __post_init__(self) -> None:
        wp = np.asarray(self.waypoints, dtype=float)
        if wp.ndim != 2 or wp.shape[1] != 2 or len(wp) < 2:
            raise ValueError("a path needs at least two 2D waypoints")
        object.__setattr__(self, "waypoints", wp)

    @property
    def length(self) -> float:
        """Total arc length of the polyline."""
        diffs = np.diff(self.waypoints, axis=0)
        return float(np.sum(np.hypot(diffs[:, 0], diffs[:, 1])))

    def _cumulative(self) -> np.ndarray:
        diffs = np.diff(self.waypoints, axis=0)
        seg = np.hypot(diffs[:, 0], diffs[:, 1])
        return np.concatenate([[0.0], np.cumsum(seg)])

    def sample(self, fractions: np.ndarray) -> np.ndarray:
        """Positions at the given arc-length fractions in ``[0, 1]``.

        Returns an ``(len(fractions), 2)`` array.
        """
        fractions = np.clip(np.asarray(fractions, dtype=float), 0.0, 1.0)
        cum = self._cumulative()
        total = cum[-1]
        if total <= 0:
            return np.repeat(self.waypoints[:1], len(fractions), axis=0)
        targets = fractions * total
        xs = np.interp(targets, cum, self.waypoints[:, 0])
        ys = np.interp(targets, cum, self.waypoints[:, 1])
        return np.column_stack([xs, ys])

    def reversed(self) -> "Path":
        """The same polyline travelled in the opposite direction."""
        return Path(self.waypoints[::-1].copy())


def circle_path(
    center: tuple[float, float],
    radius: float,
    n_turns: float = 1.0,
    n_points: int = 40,
    start_angle: float = 0.0,
) -> Path:
    """A circular (holding-pattern) path around ``center``."""
    angles = start_angle + np.linspace(0.0, 2.0 * np.pi * n_turns, n_points)
    xs = center[0] + radius * np.cos(angles)
    ys = center[1] + radius * np.sin(angles)
    return Path(np.column_stack([xs, ys]))


def concatenate_paths(*paths: Path) -> Path:
    """Join several paths into one, bridging gaps with straight hops."""
    if not paths:
        raise ValueError("need at least one path")
    pieces = [paths[0].waypoints]
    for path in paths[1:]:
        pieces.append(path.waypoints)
    return Path(np.vstack(pieces))
