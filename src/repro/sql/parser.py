"""Recursive-descent parser for the supported SQL subset.

Supported statement forms::

    CREATE DATASET flights;
    DROP DATASET flights;
    SHOW DATASETS;
    LOAD DATASET flights FROM 'flights.csv';
    INSERT INTO flights VALUES ('a320', '0', 1.0, 2.0, 3.0), (...);
    SELECT COUNT(*) FROM flights WHERE t >= 100;
    SELECT obj_id, x, y, t FROM flights WHERE obj_id = 'a320' AND t BETWEEN 0 AND 50
        ORDER BY t LIMIT 10;
    SELECT QUT(flights, 0, 1800, 900, 225, 0, 5, 3);
    SELECT S2T(flights);
    SELECT TRACLUS(flights, 4.0, 3);
    SELECT SUMMARY(flights);
    EXPLAIN SELECT S2T(flights, :sigma);

Every literal position also accepts a parameter placeholder — positional
``?`` or named ``:name`` — which parses into a
:class:`~repro.sql.ast.Parameter` and is bound later (cursor ``execute``
params, :meth:`~repro.sql.plan.LogicalPlan.bind`).

Parse failures raise :class:`~repro.sql.errors.SQLParseError` carrying the
statement source and offset, so the message pins the failure with a
``line L, col C`` header and a caret snippet.
"""

from __future__ import annotations

from repro.sql.ast import (
    Comparison,
    CreateDataset,
    DropDataset,
    Explain,
    InsertPoints,
    LoadDataset,
    Parameter,
    SelectCount,
    SelectFunction,
    SelectPoints,
    ShowDatasets,
    Statement,
)
from repro.sql.errors import SQLParseError
from repro.sql.lexer import Token, tokenize

__all__ = ["parse", "parse_script"]

_POINT_COLUMNS = {"obj_id", "traj_id", "x", "y", "t"}


class _Parser:
    def __init__(self, tokens: list[Token], source: str = "") -> None:
        self._tokens = tokens
        self._pos = 0
        self._source = source
        self._param_counter = 0

    def _error(self, message: str, position: int) -> SQLParseError:
        return SQLParseError(message, source=self._source, position=position)

    # -- token utilities ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, type_: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.type != type_ or (value is not None and token.value.upper() != value):
            expected = value or type_
            got = repr(token.value) if token.type != "EOF" else "end of statement"
            raise self._error(f"expected {expected}, got {got}", token.position)
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.type == "KEYWORD" and token.value.upper() == word:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            token = self._peek()
            got = repr(token.value) if token.type != "EOF" else "end of statement"
            raise self._error(f"expected {word}, got {got}", token.position)

    # -- entry point ------------------------------------------------------------

    def parse_statement(self) -> Statement:
        statement = self._parse_one()
        if self._peek().type == "SEMI":
            self._advance()
        self._expect("EOF")
        return statement

    def parse_script(self) -> list[Statement]:
        """Parse a ``;``-separated sequence of statements."""
        statements: list[Statement] = []
        while True:
            while self._peek().type == "SEMI":
                self._advance()
            if self._peek().type == "EOF":
                return statements
            # Positional '?' placeholders number per statement, not per
            # script: each statement binds its own parameter sequence.
            self._param_counter = 0
            statements.append(self._parse_one())
            token = self._peek()
            if token.type == "SEMI":
                self._advance()
            elif token.type != "EOF":
                raise self._error(
                    f"expected ';' between statements, got {token.value!r}",
                    token.position,
                )

    def _parse_one(self) -> Statement:
        token = self._peek()
        if token.type != "KEYWORD":
            raise self._error(
                f"statement must start with a keyword, got {token.value!r}",
                token.position,
            )
        word = token.value.upper()
        if word == "EXPLAIN":
            self._advance()
            return Explain(self._parse_one())
        if word == "CREATE":
            return self._parse_create()
        if word == "DROP":
            return self._parse_drop()
        if word == "SHOW":
            return self._parse_show()
        if word == "LOAD":
            return self._parse_load()
        if word == "INSERT":
            return self._parse_insert()
        if word == "SELECT":
            return self._parse_select()
        raise self._error(f"unsupported statement starting with {word}", token.position)

    # -- statements -----------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        self._expect_keyword("DATASET")
        name = self._expect("IDENT").value
        return CreateDataset(name)

    def _parse_drop(self) -> Statement:
        self._expect_keyword("DROP")
        self._expect_keyword("DATASET")
        name = self._expect("IDENT").value
        return DropDataset(name)

    def _parse_show(self) -> Statement:
        self._expect_keyword("SHOW")
        self._expect_keyword("DATASETS")
        return ShowDatasets()

    def _parse_load(self) -> Statement:
        self._expect_keyword("LOAD")
        self._expect_keyword("DATASET")
        name = self._expect("IDENT").value
        self._expect_keyword("FROM")
        token = self._peek()
        if token.type in ("PARAM", "NAMED_PARAM"):
            path = self._parse_literal()
        else:
            path = self._expect("STRING").value
        return LoadDataset(name, path)

    def _parse_insert(self) -> Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        dataset = self._expect("IDENT").value
        self._expect_keyword("VALUES")
        rows = [self._parse_value_tuple()]
        while self._peek().type == "COMMA":
            self._advance()
            rows.append(self._parse_value_tuple())
        return InsertPoints(dataset=dataset, rows=tuple(rows))

    def _parse_value_tuple(self) -> tuple[object, ...]:
        self._expect("LPAREN")
        values = [self._parse_literal()]
        while self._peek().type == "COMMA":
            self._advance()
            values.append(self._parse_literal())
        self._expect("RPAREN")
        return tuple(values)

    def _parse_literal(self) -> object:
        token = self._peek()
        if token.type == "NUMBER":
            self._advance()
            return _number(token.value)
        if token.type == "STRING":
            self._advance()
            return token.value
        if token.type == "PARAM":
            self._advance()
            param = Parameter(index=self._param_counter)
            self._param_counter += 1
            return param
        if token.type == "NAMED_PARAM":
            self._advance()
            return Parameter(name=token.value)
        if token.type == "IDENT":
            self._advance()
            # NULL skips an optional positional argument (falls back to the
            # function's data-driven default).
            if token.value.upper() == "NULL":
                return None
            return token.value
        raise self._error("expected a literal", token.position)

    # -- SELECT ------------------------------------------------------------------------

    def _parse_select(self) -> Statement:
        self._expect_keyword("SELECT")
        token = self._peek()

        # SELECT COUNT(*) FROM ...
        if token.type == "KEYWORD" and token.value.upper() == "COUNT":
            self._advance()
            self._expect("LPAREN")
            self._expect("STAR")
            self._expect("RPAREN")
            self._expect_keyword("FROM")
            dataset = self._expect("IDENT").value
            predicates = self._parse_where()
            return SelectCount(dataset=dataset, predicates=predicates)

        # SELECT FUNC(args...)  -- table-function call.
        if token.type == "IDENT" and self._tokens[self._pos + 1].type == "LPAREN":
            function = self._advance().value.upper()
            self._expect("LPAREN")
            args: list[object] = []
            if self._peek().type != "RPAREN":
                args.append(self._parse_literal())
                while self._peek().type == "COMMA":
                    self._advance()
                    args.append(self._parse_literal())
            self._expect("RPAREN")
            return SelectFunction(function=function, args=tuple(args))

        # SELECT col[, col...] | * FROM dataset ...
        columns: list[str] = []
        if token.type == "STAR":
            self._advance()
            columns = ["*"]
        else:
            columns.append(self._expect("IDENT").value)
            while self._peek().type == "COMMA":
                self._advance()
                columns.append(self._expect("IDENT").value)
        self._expect_keyword("FROM")
        dataset = self._expect("IDENT").value
        predicates = self._parse_where()
        order_by: str | None = None
        descending = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._expect("IDENT").value
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
        limit: object = None
        if self._accept_keyword("LIMIT"):
            if self._peek().type in ("PARAM", "NAMED_PARAM"):
                limit = self._parse_literal()
            else:
                limit = int(_number(self._expect("NUMBER").value))
        return SelectPoints(
            dataset=dataset,
            columns=tuple(columns),
            predicates=predicates,
            order_by=order_by,
            descending=descending,
            limit=limit,
        )

    def _parse_where(self) -> tuple[Comparison, ...]:
        if not self._accept_keyword("WHERE"):
            return ()
        predicates = list(self._parse_predicate())
        while self._accept_keyword("AND"):
            predicates.extend(self._parse_predicate())
        return tuple(predicates)

    def _parse_predicate(self) -> list[Comparison]:
        token = self._peek()
        column = self._expect("IDENT").value
        if column not in _POINT_COLUMNS:
            raise self._error(
                f"unknown column {column!r}; point tables have columns {sorted(_POINT_COLUMNS)}",
                token.position,
            )
        token = self._peek()
        if token.type == "KEYWORD" and token.value.upper() == "BETWEEN":
            self._advance()
            low = self._parse_literal()
            self._expect_keyword("AND")
            high = self._parse_literal()
            return [Comparison(column, ">=", low), Comparison(column, "<=", high)]
        op_map = {"EQ": "=", "NE": "!=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">="}
        if token.type not in op_map:
            raise self._error("expected a comparison operator", token.position)
        self._advance()
        value = self._parse_literal()
        return [Comparison(column, op_map[token.type], value)]


def _number(text: str) -> float | int:
    value = float(text)
    return int(value) if value.is_integer() and "." not in text and "e" not in text.lower() else value


def parse(sql: str) -> Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(tokenize(sql), sql).parse_statement()


def parse_script(sql: str) -> list[Statement]:
    """Parse a ``;``-separated script into its statement ASTs.

    Splitting is token-aware: a ``;`` inside a string literal does not end a
    statement (the old string-``split`` behaviour did break on those).
    """
    return _Parser(tokenize(sql), sql).parse_script()
