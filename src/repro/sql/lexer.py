"""Tokeniser for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.errors import SQLParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "LIMIT",
    "CREATE",
    "DROP",
    "DATASET",
    "DATASETS",
    "SHOW",
    "LOAD",
    "INSERT",
    "INTO",
    "VALUES",
    "COUNT",
    "BETWEEN",
    "AS",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "EXPLAIN",
}

_SYMBOLS = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ";": "SEMI",
    "*": "STAR",
    "=": "EQ",
    "<": "LT",
    ">": "GT",
    "<=": "LE",
    ">=": "GE",
    "!=": "NE",
    "<>": "NE",
}


@dataclass(frozen=True)
class Token:
    """A lexical token: its type, its raw text and its position."""

    type: str
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Tokenise a statement; raises :class:`SQLParseError` on bad input.

    Besides the literal/keyword/symbol tokens, two parameter-placeholder
    forms are recognised: ``?`` (``PARAM``, positional) and ``:name``
    (``NAMED_PARAM``, with ``value`` holding the bare name).
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # Two-character operators first.
        if sql[i : i + 2] in _SYMBOLS:
            tokens.append(Token(_SYMBOLS[sql[i : i + 2]], sql[i : i + 2], i))
            i += 2
            continue
        if ch in _SYMBOLS:
            tokens.append(Token(_SYMBOLS[ch], ch, i))
            i += 1
            continue
        if ch == "?":
            tokens.append(Token("PARAM", "?", i))
            i += 1
            continue
        if ch == ":":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise SQLParseError(
                    "expected a parameter name after ':'", source=sql, position=i
                )
            tokens.append(Token("NAMED_PARAM", sql[i + 1 : j], i))
            i = j
            continue
        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            buf = []
            while j < n and sql[j] != quote:
                buf.append(sql[j])
                j += 1
            if j >= n:
                raise SQLParseError(
                    f"unterminated string literal starting at {i}",
                    source=sql,
                    position=i,
                )
            tokens.append(Token("STRING", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch in "+-." and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            while j < n and (sql[j].isdigit() or sql[j] in ".eE+-"):
                # Stop at '+'/'-' unless it follows an exponent marker.
                if sql[j] in "+-" and sql[j - 1] not in "eE":
                    break
                j += 1
            tokens.append(Token("NUMBER", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] in "_."):
                j += 1
            word = sql[i:j]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, i))
            i = j
            continue
        raise SQLParseError(
            f"unexpected character {ch!r} at position {i}", source=sql, position=i
        )
    tokens.append(Token("EOF", "", n))
    return tokens
