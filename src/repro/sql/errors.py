"""SQL front-end exceptions.

Parse-time errors carry the statement source and the offending offset, and
render a ``line L, col C`` diagnostic with a caret snippet::

    line 1, col 15: expected FROM, got 'FRM'
        SELECT obj_id FRM lanes
                      ^

Errors raised without a source (legacy call sites, execution errors) degrade
to the bare message.
"""

from __future__ import annotations

__all__ = [
    "SQLError",
    "SQLParseError",
    "SQLExecutionError",
    "SQLBindError",
    "format_sql_error",
]


def _line_col(source: str, position: int) -> tuple[int, int]:
    """1-based (line, column) of character offset ``position`` in ``source``."""
    position = max(0, min(position, len(source)))
    prefix = source[:position]
    line = prefix.count("\n") + 1
    col = position - (prefix.rfind("\n") + 1) + 1
    return line, col


def format_sql_error(message: str, source: str, position: int) -> str:
    """Render ``message`` with a ``line L, col C`` header and a caret snippet."""
    line, col = _line_col(source, position)
    lines = source.splitlines() or [""]
    snippet = lines[line - 1] if line - 1 < len(lines) else ""
    caret = " " * (col - 1) + "^"
    return f"line {line}, col {col}: {message}\n    {snippet}\n    {caret}"


class SQLError(Exception):
    """Base class of every SQL front-end error."""


class SQLParseError(SQLError):
    """Raised when a statement cannot be tokenised or parsed.

    When ``source`` and ``position`` are provided the rendered message pins
    the failure to its statement offset with a caret snippet; ``line``/
    ``col`` expose the same location programmatically.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        position: int | None = None,
    ) -> None:
        self.bare_message = message
        self.source = source
        self.position = position
        if source is not None and position is not None:
            self.line, self.col = _line_col(source, position)
            rendered = format_sql_error(message, source, position)
        else:
            self.line = self.col = None
            rendered = message
        super().__init__(rendered)


class SQLExecutionError(SQLError):
    """Raised when a well-formed statement cannot be executed."""


class SQLBindError(SQLExecutionError):
    """Raised when statement parameters cannot be bound (missing/unknown/unbound)."""
