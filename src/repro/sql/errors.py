"""SQL front-end exceptions."""

from __future__ import annotations

__all__ = ["SQLError", "SQLParseError", "SQLExecutionError"]


class SQLError(Exception):
    """Base class of every SQL front-end error."""


class SQLParseError(SQLError):
    """Raised when a statement cannot be tokenised or parsed."""


class SQLExecutionError(SQLError):
    """Raised when a well-formed statement cannot be executed."""
