"""Abstract syntax of the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Statement",
    "Parameter",
    "Explain",
    "CreateDataset",
    "DropDataset",
    "ShowDatasets",
    "LoadDataset",
    "InsertPoints",
    "Comparison",
    "SelectPoints",
    "SelectCount",
    "SelectFunction",
]


class Statement:
    """Marker base class for parsed statements."""


@dataclass(frozen=True)
class Parameter:
    """A statement parameter placeholder: positional ``?`` or named ``:name``.

    Placeholders survive parsing and planning; they are substituted by
    :meth:`repro.sql.plan.LogicalPlan.bind` before execution.
    """

    index: int | None = None
    name: str | None = None

    @property
    def label(self) -> str:
        """How the placeholder is written in SQL (``:sigma`` / ``?1``)."""
        if self.name is not None:
            return f":{self.name}"
        return f"?{(self.index or 0) + 1}"


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN <statement>``"""

    statement: Statement


@dataclass(frozen=True)
class CreateDataset(Statement):
    """``CREATE DATASET name``"""

    name: str


@dataclass(frozen=True)
class DropDataset(Statement):
    """``DROP DATASET name``"""

    name: str


@dataclass(frozen=True)
class ShowDatasets(Statement):
    """``SHOW DATASETS``"""


@dataclass(frozen=True)
class LoadDataset(Statement):
    """``LOAD DATASET name FROM 'file.csv'``"""

    name: str
    path: str


@dataclass(frozen=True)
class InsertPoints(Statement):
    """``INSERT INTO name VALUES (obj, traj, x, y, t)[, (...)]*``"""

    dataset: str
    rows: tuple[tuple[object, ...], ...]


@dataclass(frozen=True)
class Comparison:
    """A ``column <op> literal`` predicate (or BETWEEN, expressed as two of these)."""

    column: str
    op: str
    value: object


@dataclass(frozen=True)
class SelectPoints(Statement):
    """``SELECT cols FROM dataset [WHERE ...] [ORDER BY col [DESC]] [LIMIT n]``"""

    dataset: str
    columns: tuple[str, ...]
    predicates: tuple[Comparison, ...] = ()
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None


@dataclass(frozen=True)
class SelectCount(Statement):
    """``SELECT COUNT(*) FROM dataset [WHERE ...]``"""

    dataset: str
    predicates: tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class SelectFunction(Statement):
    """``SELECT FUNC(arg, ...)`` — the table-function form (QUT, S2T, ...)."""

    function: str
    args: tuple[object, ...] = field(default_factory=tuple)
