"""The logical-plan layer shared by the SQL and fluent-Python front-ends.

Both front-ends compile to the same frozen plan dataclasses: the SQL path
parses a statement and lowers the AST (:mod:`repro.sql.planner`), the fluent
path (``conn.dataset("lanes").s2t(sigma=...)``) constructs the node
directly — so ``EXPLAIN`` output, parameter binding and execution behave
identically no matter how a query was written.

A plan may contain :class:`~repro.sql.ast.Parameter` placeholders (``?`` /
``:name``).  :meth:`LogicalPlan.bind` substitutes them and returns a new,
fully-literal plan; :class:`~repro.sql.executor.PlanExecutor` refuses to run
a plan that still has unbound placeholders.

Plans are immutable and comparable — preparing a statement once and
re-binding it per execution is cheap, and tests can assert that two paths
produced *identical* plan objects.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any

from repro.sql.ast import Comparison, Parameter
from repro.sql.errors import SQLBindError

__all__ = [
    "LogicalPlan",
    "ShowPlan",
    "CreatePlan",
    "DropPlan",
    "LoadPlan",
    "InsertPlan",
    "ScanPlan",
    "CountPlan",
    "S2TPlan",
    "QuTPlan",
    "FunctionPlan",
    "ExplainPlan",
    "bind_for_execution",
    "plan_lines",
]


def _walk_parameters(value: object) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, tuple):
        for item in value:
            yield from _walk_parameters(item)
    elif is_dataclass(value) and not isinstance(value, type):
        for f in fields(value):
            yield from _walk_parameters(getattr(value, f.name))


def _bind_value(value: object, binder: Callable[[Parameter], object]) -> object:
    if isinstance(value, Parameter):
        return binder(value)
    if isinstance(value, tuple):
        return tuple(_bind_value(item, binder) for item in value)
    if is_dataclass(value) and not isinstance(value, type):
        changes = {
            f.name: _bind_value(getattr(value, f.name), binder) for f in fields(value)
        }
        return replace(value, **changes)
    return value


def _format_value(value: object) -> str:
    if isinstance(value, Parameter):
        return value.label
    if isinstance(value, Comparison):
        return f"{value.column} {value.op} {_format_value(value.value)}"
    if isinstance(value, tuple):
        return "(" + ", ".join(_format_value(item) for item in value) + ")"
    return repr(value)


class LogicalPlan:
    """Base class of every plan node.

    Subclasses are frozen dataclasses; equality is structural, which is what
    lets tests assert the SQL and fluent paths compile to *identical* plans.
    """

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def datasets(self) -> tuple[str, ...]:
        """The dataset names the plan reads or writes (for EXPLAIN artifacts
        and prepared-statement generation tracking)."""
        name = getattr(self, "dataset", None)
        if isinstance(name, str):
            return (name,)
        return ()

    def parameters(self) -> tuple[Parameter, ...]:
        """Every unbound placeholder in the plan, in source order."""
        seen: list[Parameter] = []
        for f in fields(self):  # type: ignore[arg-type]
            for param in _walk_parameters(getattr(self, f.name)):
                if param not in seen:
                    seen.append(param)
        return tuple(seen)

    def bind(
        self,
        params: Mapping[str, object] | Sequence[object] | None = None,
    ) -> "LogicalPlan":
        """Substitute parameter placeholders and return the bound plan.

        ``params`` is a mapping for named (``:sigma``) placeholders or a
        sequence for positional (``?``) ones.  Missing or surplus bindings
        raise :class:`~repro.sql.errors.SQLBindError`; a plan with no
        placeholders accepts ``params=None`` unchanged.
        """
        placeholders = self.parameters()
        if not placeholders:
            if params:
                raise SQLBindError(
                    f"statement takes no parameters, got {params!r}"
                )
            return self
        named = {p.name for p in placeholders if p.name is not None}
        positional = [p for p in placeholders if p.index is not None]
        if named and positional:
            raise SQLBindError(
                "statement mixes named (:name) and positional (?) parameters; "
                "use one placeholder style"
            )
        if params is None:
            missing = sorted(named) + [p.label for p in positional]
            raise SQLBindError(f"statement has unbound parameters: {', '.join(missing)}")
        if isinstance(params, (str, bytes)):
            # A lone string is a classic DB-API mistake; binding it
            # character-by-character would be silently wrong.
            raise SQLBindError(
                "bind positional parameters with a list/tuple, not a bare string"
            )
        if isinstance(params, Mapping):
            if positional:
                raise SQLBindError(
                    "statement uses positional '?' parameters; bind with a sequence"
                )
            unknown = set(params) - named
            if unknown:
                raise SQLBindError(
                    f"unknown parameter(s) {sorted(unknown)}; statement declares {sorted(named)}"
                )

            def binder(param: Parameter) -> object:
                if param.name not in params:
                    raise SQLBindError(f"missing value for parameter :{param.name}")
                return params[param.name]

        else:
            if named:
                raise SQLBindError(
                    f"statement uses named parameters {sorted(named)}; bind with a mapping"
                )
            values = list(params)
            if len(values) != len(positional):
                raise SQLBindError(
                    f"statement takes {len(positional)} positional parameter(s), got {len(values)}"
                )

            def binder(param: Parameter) -> object:
                return values[param.index]  # type: ignore[index]

        changes = {
            f.name: _bind_value(getattr(self, f.name), binder)
            for f in fields(self)  # type: ignore[arg-type]
        }
        return replace(self, **changes)  # type: ignore[type-var]

    def describe(self) -> str:
        """One-line rendering of the node for EXPLAIN output."""
        parts = ", ".join(
            f"{f.name}={_format_value(getattr(self, f.name))}"
            for f in fields(self)  # type: ignore[arg-type]
            if not isinstance(getattr(self, f.name), LogicalPlan)
        )
        return f"{type(self).__name__}({parts})"


@dataclass(frozen=True)
class ShowPlan(LogicalPlan):
    """``SHOW DATASETS``"""


@dataclass(frozen=True)
class CreatePlan(LogicalPlan):
    """``CREATE DATASET name``"""

    dataset: str


@dataclass(frozen=True)
class DropPlan(LogicalPlan):
    """``DROP DATASET name``"""

    dataset: str


@dataclass(frozen=True)
class LoadPlan(LogicalPlan):
    """``LOAD DATASET name FROM 'path'``"""

    dataset: str
    path: object


@dataclass(frozen=True)
class InsertPlan(LogicalPlan):
    """``INSERT INTO name VALUES (...), ...``"""

    dataset: str
    rows: tuple[tuple[object, ...], ...]


@dataclass(frozen=True)
class ScanPlan(LogicalPlan):
    """Point-record scan: projection, filters, ordering, limit.

    Without ``order_by`` the scan *streams*: rows are produced lazily from
    the dataset, so a cursor consuming it holds only its bounded buffer.
    """

    dataset: str
    columns: tuple[str, ...] = ("*",)
    predicates: tuple[Comparison, ...] = ()
    order_by: str | None = None
    descending: bool = False
    limit: object = None  # int, or a Parameter until bound


@dataclass(frozen=True)
class CountPlan(LogicalPlan):
    """``SELECT COUNT(*) FROM dataset [WHERE ...]``"""

    dataset: str
    predicates: tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class S2TPlan(LogicalPlan):
    """S2T sub-trajectory clustering (``SELECT S2T(D, sigma, eps, gamma,
    strategy, jobs, shards)`` / ``conn.dataset(D).s2t(...)``).

    ``shards`` overrides the temporal partition count of the partitioned
    operator (``None`` keeps the scheduler default); with ``jobs > 1`` each
    shard fits in a worker process over the shared-memory frame broadcast.
    """

    dataset: str
    sigma: object = None
    eps: object = None
    gamma: object = 2
    strategy: object = "batched"
    jobs: object = 1
    shards: object = None


@dataclass(frozen=True)
class QuTPlan(LogicalPlan):
    """QuT query-window clustering (``SELECT QUT(D, Wi, We, tau, delta, t, d,
    gamma, shards)`` / ``conn.dataset(D).qut(wi, we, ...)``).

    ``shards`` selects the index layout (``N`` shard-local ReTraTrees with
    scatter-gather queries; ``None`` accepts whatever layout exists) — any
    value returns bit-identical clusters.
    """

    dataset: str
    wi: object = None
    we: object = None
    tau: object = None
    delta: object = None
    tolerance: object = 0.0
    distance: object = None
    gamma: object = 2
    shards: object = None


@dataclass(frozen=True)
class FunctionPlan(LogicalPlan):
    """Any other table function (TRACLUS, TOPTICS, CONVOY, SUMMARY, ...)."""

    function: str
    args: tuple[object, ...] = ()

    def datasets(self) -> tuple[str, ...]:
        if self.args and isinstance(self.args[0], str):
            return (self.args[0],)
        return ()


@dataclass(frozen=True)
class ExplainPlan(LogicalPlan):
    """``EXPLAIN <statement>`` — renders the child plan instead of running it."""

    plan: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.plan,)

    def datasets(self) -> tuple[str, ...]:
        return self.plan.datasets()


def bind_for_execution(
    plan: LogicalPlan,
    params: Mapping[str, object] | Sequence[object] | None = None,
) -> LogicalPlan:
    """The one bind policy every execution front-end shares.

    ``EXPLAIN`` statements render unbound placeholders as-is, so they bind
    only when the caller supplies values; every other plan must end up
    fully bound (``bind`` raises on missing values).
    """
    if isinstance(plan, ExplainPlan):
        return plan.bind(params) if params is not None else plan
    if params is not None or plan.parameters():
        return plan.bind(params)
    return plan


def plan_lines(plan: LogicalPlan, engine: Any = None) -> list[str]:
    """Render a plan tree as indented text lines.

    With an engine, one ``artifacts[name]: ...`` line per referenced dataset
    is appended, reporting the engine's cached/persisted derived state
    (frame cached? tree cached/persisted? storage partitions?) via
    :meth:`repro.core.engine.HermesEngine.artifact_status`.
    """
    lines: list[str] = []

    def walk(node: LogicalPlan, depth: int) -> None:
        lines.append("  " * depth + node.describe())
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    if engine is not None:
        for name in plan.datasets():
            status = engine.artifact_status(name)
            rendered = " ".join(
                f"{key}={value}" for key, value in status.items() if key != "dataset"
            )
            lines.append(f"artifacts[{name}]: {rendered}")
    return lines
