"""SQL front-end.

The paper's point is that the clustering algorithms are callable "via simple
SQL" from inside the DBMS.  This package provides a small SQL engine over
:class:`~repro.core.engine.HermesEngine`:

* a lexer and recursive-descent parser for the supported statement forms
  (:mod:`repro.sql.lexer`, :mod:`repro.sql.parser`, :mod:`repro.sql.ast`),
* an executor translating statements into engine calls
  (:mod:`repro.sql.executor`),
* the table functions of the paper's API — most importantly
  ``SELECT QUT(D, Wi, We, tau, delta, t, d, gamma)`` — plus ``S2T``,
  ``TRACLUS``, ``TOPTICS``, ``CONVOY``, ``SUMMARY``, ``CLUSTER_HISTOGRAM``
  and ``HOLDING_PATTERNS`` (:mod:`repro.sql.functions`).

Every statement returns a list of dict rows.
"""

from repro.sql.executor import SQLExecutor
from repro.sql.errors import SQLError, SQLParseError, SQLExecutionError

__all__ = ["SQLExecutor", "SQLError", "SQLParseError", "SQLExecutionError"]
