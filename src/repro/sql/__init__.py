"""SQL front-end.

The paper's point is that the clustering algorithms are callable "via simple
SQL" from inside the DBMS.  This package provides a small SQL engine over
:class:`~repro.core.engine.HermesEngine`, layered as statement → logical
plan → executor:

* a lexer and recursive-descent parser for the supported statement forms,
  including ``EXPLAIN`` and ``:name`` / ``?`` parameter placeholders
  (:mod:`repro.sql.lexer`, :mod:`repro.sql.parser`, :mod:`repro.sql.ast`);
  parse errors carry ``line/col`` positions with a caret snippet;
* the logical-plan layer shared with the fluent Python API
  (:mod:`repro.sql.plan`) and the AST → plan lowering
  (:mod:`repro.sql.planner`);
* a streaming :class:`~repro.sql.executor.PlanExecutor` plus the historical
  string-in/rows-out :class:`~repro.sql.executor.SQLExecutor` facade;
* the table functions of the paper's API — most importantly
  ``SELECT QUT(D, Wi, We, tau, delta, t, d, gamma)`` — plus ``S2T``,
  ``TRACLUS``, ``TOPTICS``, ``CONVOY``, ``SUMMARY``, ``CLUSTER_HISTOGRAM``
  and ``HOLDING_PATTERNS`` (:mod:`repro.sql.functions`).

End users should reach this machinery through :mod:`repro.api`
(``repro.connect()``): connections, cursors and prepared statements all
compile to the plan layer defined here.
"""

from repro.sql.errors import (
    SQLBindError,
    SQLError,
    SQLExecutionError,
    SQLParseError,
)
from repro.sql.executor import PlanExecutor, ResultSet, SQLExecutor
from repro.sql.plan import (
    CountPlan,
    CreatePlan,
    DropPlan,
    ExplainPlan,
    FunctionPlan,
    InsertPlan,
    LoadPlan,
    LogicalPlan,
    QuTPlan,
    S2TPlan,
    ScanPlan,
    ShowPlan,
    plan_lines,
)
from repro.sql.planner import plan_sql, plan_sql_script, plan_statement

__all__ = [
    "SQLExecutor",
    "PlanExecutor",
    "ResultSet",
    "SQLError",
    "SQLParseError",
    "SQLExecutionError",
    "SQLBindError",
    "LogicalPlan",
    "ShowPlan",
    "CreatePlan",
    "DropPlan",
    "LoadPlan",
    "InsertPlan",
    "ScanPlan",
    "CountPlan",
    "S2TPlan",
    "QuTPlan",
    "FunctionPlan",
    "ExplainPlan",
    "plan_lines",
    "plan_statement",
    "plan_sql",
    "plan_sql_script",
]
