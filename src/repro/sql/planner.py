"""Lowering of parsed SQL statements into logical plans.

The planner is deliberately thin: the AST is already statement-shaped, so
lowering mostly maps positional table-function arguments onto the typed
fields of the corresponding plan node (``S2TPlan``, ``QuTPlan``), applying
the same defaults the fluent Python API uses — which is what makes the two
front-ends produce identical plan objects.
"""

from __future__ import annotations

from repro.sql.ast import (
    CreateDataset,
    DropDataset,
    Explain,
    InsertPoints,
    LoadDataset,
    SelectCount,
    SelectFunction,
    SelectPoints,
    ShowDatasets,
    Statement,
)
from repro.sql.errors import SQLExecutionError
from repro.sql.parser import parse, parse_script
from repro.sql.plan import (
    CountPlan,
    CreatePlan,
    DropPlan,
    ExplainPlan,
    FunctionPlan,
    InsertPlan,
    LoadPlan,
    LogicalPlan,
    QuTPlan,
    S2TPlan,
    ScanPlan,
    ShowPlan,
)

__all__ = ["plan_statement", "plan_sql", "plan_sql_script"]


def _arg(args: tuple, idx: int, default: object = None) -> object:
    """Positional argument ``idx`` with ``NULL``/omitted falling back to ``default``."""
    if len(args) <= idx or args[idx] is None:
        return default
    return args[idx]


def plan_statement(statement: Statement) -> LogicalPlan:
    """Lower one parsed statement into its logical plan."""
    if isinstance(statement, Explain):
        return ExplainPlan(plan_statement(statement.statement))
    if isinstance(statement, ShowDatasets):
        return ShowPlan()
    if isinstance(statement, CreateDataset):
        return CreatePlan(statement.name)
    if isinstance(statement, DropDataset):
        return DropPlan(statement.name)
    if isinstance(statement, LoadDataset):
        return LoadPlan(statement.name, statement.path)
    if isinstance(statement, InsertPoints):
        return InsertPlan(statement.dataset, statement.rows)
    if isinstance(statement, SelectCount):
        return CountPlan(statement.dataset, statement.predicates)
    if isinstance(statement, SelectPoints):
        return ScanPlan(
            dataset=statement.dataset,
            columns=statement.columns,
            predicates=statement.predicates,
            order_by=statement.order_by,
            descending=statement.descending,
            limit=statement.limit,
        )
    if isinstance(statement, SelectFunction):
        args = statement.args
        if statement.function == "S2T":
            return S2TPlan(
                dataset=_arg(args, 0),
                sigma=_arg(args, 1),
                eps=_arg(args, 2),
                gamma=_arg(args, 3, 2),
                strategy=_arg(args, 4, "batched"),
                jobs=_arg(args, 5, 1),
                shards=_arg(args, 6),
            )
        if statement.function == "QUT":
            return QuTPlan(
                dataset=_arg(args, 0),
                wi=_arg(args, 1),
                we=_arg(args, 2),
                tau=_arg(args, 3),
                delta=_arg(args, 4),
                tolerance=_arg(args, 5, 0.0),
                distance=_arg(args, 6),
                gamma=_arg(args, 7, 2),
                shards=_arg(args, 8),
            )
        return FunctionPlan(statement.function, args)
    raise SQLExecutionError(f"unsupported statement {statement!r}")


def plan_sql(sql: str) -> LogicalPlan:
    """Parse and lower one SQL statement."""
    return plan_statement(parse(sql))


def plan_sql_script(sql: str) -> list[LogicalPlan]:
    """Parse and lower a ``;``-separated script, one plan per statement."""
    return [plan_statement(statement) for statement in parse_script(sql)]
