"""SQL statement execution against a :class:`~repro.core.engine.HermesEngine`."""

from __future__ import annotations

import operator
from collections import defaultdict

from repro.core.engine import HermesEngine
from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory
from repro.sql.ast import (
    Comparison,
    CreateDataset,
    DropDataset,
    InsertPoints,
    LoadDataset,
    SelectCount,
    SelectFunction,
    SelectPoints,
    ShowDatasets,
    Statement,
)
from repro.sql.errors import SQLExecutionError
from repro.sql.functions import call_function
from repro.sql.parser import parse

__all__ = ["SQLExecutor"]

_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_POINT_COLUMNS = ("obj_id", "traj_id", "x", "y", "t")


class SQLExecutor:
    """Parses and executes SQL statements, returning rows as dicts.

    The executor also buffers `INSERT INTO` point records for datasets that
    were declared with ``CREATE DATASET`` but not yet materialised as
    trajectories; records become trajectories as soon as an object has at
    least two samples.
    """

    def __init__(self, engine: HermesEngine) -> None:
        self.engine = engine
        # Pending point records per (dataset, obj_id, traj_id).
        self._pending: dict[str, dict[tuple[str, str], list[tuple[float, float, float]]]] = {}
        # Engine dataset generation each pending buffer was seeded from; a
        # mismatch means the dataset was replaced outside this executor
        # (engine.load_mod / drop+reload) and the buffer must be re-seeded.
        self._pending_generation: dict[str, int] = {}

    def forget(self, name: str) -> None:
        """Discard buffered state for a dataset (called by ``engine.drop``)."""
        self._pending.pop(name, None)
        self._pending_generation.pop(name, None)

    # -- public API ----------------------------------------------------------------

    def execute(self, sql: str) -> list[dict[str, object]]:
        """Execute one statement and return its result rows."""
        statement = parse(sql)
        return self._dispatch(statement)

    def execute_script(self, sql: str) -> list[list[dict[str, object]]]:
        """Execute a ``;``-separated script; returns one result set per statement."""
        results = []
        for piece in sql.split(";"):
            if piece.strip():
                results.append(self.execute(piece))
        return results

    # -- dispatch --------------------------------------------------------------------

    def _dispatch(self, statement: Statement) -> list[dict[str, object]]:
        if isinstance(statement, CreateDataset):
            return self._create(statement)
        if isinstance(statement, DropDataset):
            return self._drop(statement)
        if isinstance(statement, ShowDatasets):
            return self._show_datasets()
        if isinstance(statement, LoadDataset):
            mod = self.engine.load_csv(statement.name, statement.path)
            return [{"dataset": statement.name, "trajectories": len(mod)}]
        if isinstance(statement, InsertPoints):
            return self._insert(statement)
        if isinstance(statement, SelectCount):
            return self._count(statement)
        if isinstance(statement, SelectPoints):
            return self._select_points(statement)
        if isinstance(statement, SelectFunction):
            return call_function(self.engine, statement.function, statement.args)
        raise SQLExecutionError(f"unsupported statement {statement!r}")

    def _show_datasets(self) -> list[dict[str, object]]:
        """``SHOW DATASETS`` rows.

        On a durable (``on_disk``) engine each row also reports whether the
        dataset has a manifest on disk — i.e. whether a cold process would
        recover it; in-memory engines keep the legacy single-column shape.
        """
        if self.engine.storage_directory is None:
            return [{"dataset": name} for name in self.engine.datasets()]
        return [
            {"dataset": name, "persisted": self.engine.is_persisted(name)}
            for name in self.engine.datasets()
        ]

    # -- DDL / DML ------------------------------------------------------------------------

    def _create(self, statement: CreateDataset) -> list[dict[str, object]]:
        if statement.name in self.engine.datasets():
            raise SQLExecutionError(f"dataset {statement.name!r} already exists")
        self.engine.load_mod(statement.name, MOD(name=statement.name))
        self._pending[statement.name] = defaultdict(list)
        self._pending_generation[statement.name] = self.engine.dataset_generation(
            statement.name
        )
        return [{"created": statement.name}]

    def _drop(self, statement: DropDataset) -> list[dict[str, object]]:
        if statement.name not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {statement.name!r}")
        self.engine.drop(statement.name)
        self.forget(statement.name)
        return [{"dropped": statement.name}]

    def _insert(self, statement: InsertPoints) -> list[dict[str, object]]:
        name = statement.dataset
        if name not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {name!r}; CREATE DATASET it first")
        generation = self.engine.dataset_generation(name)
        if name not in self._pending or self._pending_generation.get(name) != generation:
            # Seed the buffer from the already-materialised trajectories so
            # that INSERTs extend, rather than replace, an existing dataset.
            # Also taken when the dataset's generation moved, i.e. it was
            # replaced outside this executor and the old buffer is stale.
            seeded: dict[tuple[str, str], list[tuple[float, float, float]]] = defaultdict(list)
            for traj in self.engine.get_mod(name):
                for i in range(traj.num_points):
                    seeded[(traj.obj_id, traj.traj_id)].append(
                        (float(traj.ts[i]), float(traj.xs[i]), float(traj.ys[i]))
                    )
            self._pending[name] = seeded
            self._pending_generation[name] = generation
        pending = self._pending[name]
        inserted = 0
        for row in statement.rows:
            if len(row) != 5:
                raise SQLExecutionError(
                    "INSERT rows must be (obj_id, traj_id, x, y, t); got "
                    f"{len(row)} values"
                )
            obj_id, traj_id, x, y, t = row
            pending[(str(obj_id), str(traj_id))].append((float(t), float(x), float(y)))
            inserted += 1
        self._materialise(name)
        return [{"inserted": inserted}]

    def _materialise(self, name: str) -> None:
        """Rebuild the dataset's MOD from the buffered point records.

        Goes through ``engine.load_mod``, so on a durable engine every
        ``INSERT`` *statement* commits the whole dataset archive to disk —
        statement-level durability, like a DBMS transaction per statement.
        Ingestion scripts should therefore batch rows into multi-row
        ``INSERT INTO d VALUES (...), (...), ...`` statements rather than
        issuing one statement per point.
        """
        pending = self._pending.get(name, {})
        mod = MOD(name=name)
        for (obj_id, traj_id), samples in pending.items():
            ordered = sorted(samples)
            ts, xs, ys = [], [], []
            last_t = None
            for t, x, y in ordered:
                if last_t is not None and t <= last_t:
                    continue
                ts.append(t)
                xs.append(x)
                ys.append(y)
                last_t = t
            if len(ts) >= 2:
                mod.add(Trajectory(obj_id, traj_id, xs, ys, ts))
        self.engine.load_mod(name, mod)
        # load_mod bumped the generation for the dataset we just wrote; the
        # buffer is the source of that state, not stale — record the new
        # token so the next INSERT keeps extending it.
        self._pending_generation[name] = self.engine.dataset_generation(name)

    # -- queries over point records ------------------------------------------------------------

    def _point_rows(self, dataset: str) -> list[dict[str, object]]:
        mod = self.engine.get_mod(dataset)
        rows = []
        for traj in mod:
            for i in range(traj.num_points):
                rows.append(
                    {
                        "obj_id": traj.obj_id,
                        "traj_id": traj.traj_id,
                        "x": float(traj.xs[i]),
                        "y": float(traj.ys[i]),
                        "t": float(traj.ts[i]),
                    }
                )
        return rows

    @staticmethod
    def _matches(row: dict[str, object], predicates: tuple[Comparison, ...]) -> bool:
        for pred in predicates:
            op = _OPERATORS[pred.op]
            if not op(row[pred.column], pred.value):
                return False
        return True

    def _count(self, statement: SelectCount) -> list[dict[str, object]]:
        if statement.dataset not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {statement.dataset!r}")
        rows = self._point_rows(statement.dataset)
        count = sum(1 for row in rows if self._matches(row, statement.predicates))
        return [{"count": count}]

    def _select_points(self, statement: SelectPoints) -> list[dict[str, object]]:
        if statement.dataset not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {statement.dataset!r}")
        columns = (
            _POINT_COLUMNS if statement.columns == ("*",) else statement.columns
        )
        unknown = set(columns) - set(_POINT_COLUMNS)
        if unknown:
            raise SQLExecutionError(f"unknown columns {sorted(unknown)}")
        rows = [
            row
            for row in self._point_rows(statement.dataset)
            if self._matches(row, statement.predicates)
        ]
        if statement.order_by is not None:
            if statement.order_by not in _POINT_COLUMNS:
                raise SQLExecutionError(f"unknown ORDER BY column {statement.order_by!r}")
            rows.sort(key=lambda r: r[statement.order_by], reverse=statement.descending)
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return [{col: row[col] for col in columns} for row in rows]
