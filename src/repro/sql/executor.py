"""Plan execution against a :class:`~repro.core.engine.HermesEngine`.

The execution layer is split in two:

* :class:`PlanExecutor` — runs *logical plans* (:mod:`repro.sql.plan`) and
  returns a streaming :class:`ResultSet`.  This is the single executor under
  both front-ends: the SQL string path and the fluent Python path compile to
  the same plan objects and land here.
* :class:`SQLExecutor` — the historical string-in/rows-out facade, now a
  thin wrapper: parse → plan → bind → execute → materialise.

``INSERT INTO`` point buffering lives on the :class:`PlanExecutor` (one per
engine, shared by every connection over that engine): records for datasets
declared with ``CREATE DATASET`` become trajectories as soon as an object
has at least two samples.  Completed trajectories whose keys are *new* take
the **append path** (:meth:`repro.core.engine.HermesEngine.append`):
the dataset's cached frame and ReTraTree are maintained incrementally and,
on a durable engine, the batch commits as a delta partition — nothing is
invalidated or rebuilt.  A statement that adds points to an *existing*
trajectory falls back to the historical full re-materialisation (a
replacement, which invalidates caches), since changing a trajectory's
samples cannot be expressed as an append.
"""

from __future__ import annotations

import operator
from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.engine import HermesEngine
from repro.core.ingest import AppendBuffer
from repro.hermes.mod import MOD
from repro.sql.ast import Comparison
from repro.sql.errors import SQLBindError, SQLExecutionError
from repro.sql.functions import call_function
from repro.sql.plan import (
    CountPlan,
    CreatePlan,
    DropPlan,
    ExplainPlan,
    FunctionPlan,
    InsertPlan,
    LoadPlan,
    LogicalPlan,
    QuTPlan,
    S2TPlan,
    ScanPlan,
    ShowPlan,
    bind_for_execution,
    plan_lines,
)
from repro.sql.planner import plan_sql, plan_sql_script

__all__ = ["ResultSet", "PlanExecutor", "SQLExecutor", "iter_script"]

_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

_POINT_COLUMNS = ("obj_id", "traj_id", "x", "y", "t")


class ResultSet:
    """The rows one plan execution produces, consumed as an iterator.

    Statement results stream: a :class:`ResultSet` backed by a generator
    (e.g. an unordered point scan) produces rows on demand, so a cursor
    reading it holds only its own bounded buffer, never the full relation.
    ``columns`` is the projection when it is known up front (scans), else
    ``None`` until a consumer derives it from the first row.
    """

    def __init__(
        self,
        rows: Iterable[dict[str, object]],
        columns: tuple[str, ...] | None = None,
    ) -> None:
        self._rows = iter(rows)
        self.columns = columns

    def __iter__(self) -> Iterator[dict[str, object]]:
        return self._rows

    def __next__(self) -> dict[str, object]:
        return next(self._rows)

    def fetchall(self) -> list[dict[str, object]]:
        """Drain the remaining rows into a list."""
        return list(self._rows)


class PlanExecutor:
    """Executes logical plans, returning streaming result sets.

    Also owns the `INSERT INTO` point buffers for datasets that were
    declared with ``CREATE DATASET`` but not yet materialised as
    trajectories.  There is one executor per engine (see
    :meth:`repro.core.engine.HermesEngine.plan_executor`), so every
    connection and cursor over that engine shares the same buffered state.
    """

    def __init__(self, engine: HermesEngine) -> None:
        self.engine = engine
        # Not-yet-complete point records per dataset (keys with fewer than
        # two distinct instants, waiting for more INSERTs).
        self._buffers: dict[str, AppendBuffer] = {}
        # Engine *replacement* generation each buffer was last synchronised
        # at; a mismatch means the dataset was replaced (engine.load_mod /
        # drop+reload) and the buffered points belong to the previous
        # incarnation.  Appends — this executor's own or external ones —
        # do not move the replacement generation, so buffered points
        # survive them.
        self._buffer_generation: dict[str, int] = {}

    def forget(self, name: str) -> None:
        """Discard buffered state for a dataset (called by ``engine.drop``)."""
        self._buffers.pop(name, None)
        self._buffer_generation.pop(name, None)

    # -- dispatch --------------------------------------------------------------------

    def execute(self, plan: LogicalPlan) -> ResultSet:
        """Execute one bound plan and return its (possibly streaming) rows."""
        if isinstance(plan, ExplainPlan):
            # EXPLAIN renders rather than runs, so unbound placeholders are
            # fine — they show up as :name / ?N in the plan text.
            lines = plan_lines(plan.plan, engine=self.engine)
            return ResultSet(({"plan": line} for line in lines), columns=("plan",))
        unbound = plan.parameters()
        if unbound:
            labels = ", ".join(p.label for p in unbound)
            raise SQLBindError(f"statement has unbound parameters: {labels}")
        if isinstance(plan, ShowPlan):
            return ResultSet(self._show_datasets())
        if isinstance(plan, CreatePlan):
            return ResultSet(self._create(plan))
        if isinstance(plan, DropPlan):
            return ResultSet(self._drop(plan))
        if isinstance(plan, LoadPlan):
            mod = self.engine.load_csv(plan.dataset, str(plan.path))
            return ResultSet([{"dataset": plan.dataset, "trajectories": len(mod)}])
        if isinstance(plan, InsertPlan):
            return ResultSet(self._insert(plan))
        if isinstance(plan, CountPlan):
            return ResultSet(self._count(plan))
        if isinstance(plan, ScanPlan):
            return self._scan(plan)
        if isinstance(plan, S2TPlan):
            args = (
                plan.dataset,
                plan.sigma,
                plan.eps,
                plan.gamma,
                plan.strategy,
                plan.jobs,
                plan.shards,
            )
            return ResultSet(call_function(self.engine, "S2T", args))
        if isinstance(plan, QuTPlan):
            args = (
                plan.dataset,
                plan.wi,
                plan.we,
                plan.tau,
                plan.delta,
                plan.tolerance,
                plan.distance,
                plan.gamma,
                plan.shards,
            )
            return ResultSet(call_function(self.engine, "QUT", args))
        if isinstance(plan, FunctionPlan):
            return ResultSet(call_function(self.engine, plan.function, plan.args))
        raise SQLExecutionError(f"unsupported plan {plan!r}")

    def _show_datasets(self) -> list[dict[str, object]]:
        """``SHOW DATASETS`` rows.

        On a durable (``on_disk``) engine each row also reports whether the
        dataset has a manifest on disk — i.e. whether a cold process would
        recover it; in-memory engines keep the legacy single-column shape.
        """
        if self.engine.storage_directory is None:
            return [{"dataset": name} for name in self.engine.datasets()]
        return [
            {"dataset": name, "persisted": self.engine.is_persisted(name)}
            for name in self.engine.datasets()
        ]

    # -- DDL / DML ------------------------------------------------------------------------

    def _create(self, plan: CreatePlan) -> list[dict[str, object]]:
        if plan.dataset in self.engine.datasets():
            raise SQLExecutionError(f"dataset {plan.dataset!r} already exists")
        self.engine.load_mod(plan.dataset, MOD(name=plan.dataset))
        self._buffers[plan.dataset] = AppendBuffer()
        self._buffer_generation[plan.dataset] = self.engine.dataset_replacement_generation(
            plan.dataset
        )
        return [{"created": plan.dataset}]

    def _drop(self, plan: DropPlan) -> list[dict[str, object]]:
        if plan.dataset not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {plan.dataset!r}")
        self.engine.drop(plan.dataset)
        self.forget(plan.dataset)
        return [{"dropped": plan.dataset}]

    def _buffer_for(self, name: str) -> AppendBuffer:
        """The dataset's point buffer, discarding it when the dataset was replaced.

        A *replacement*-generation mismatch means the dataset was swapped
        out underneath this executor (``engine.load_mod``, drop +
        recreate); whatever points were buffered belong to the previous
        incarnation and are dropped, exactly as the historical re-seeding
        path dropped them.  Appends deliberately do not trip this check —
        they only add state, so points buffered before an interleaved
        append are still valid and must survive to complete later.
        """
        generation = self.engine.dataset_replacement_generation(name)
        if name not in self._buffers or self._buffer_generation.get(name) != generation:
            self._buffers[name] = AppendBuffer()
            self._buffer_generation[name] = generation
        return self._buffers[name]

    def _insert(self, plan: InsertPlan) -> list[dict[str, object]]:
        """``INSERT INTO``: append-path for new trajectories, rebuild otherwise.

        Every row is validated before any state changes (a bad row fails
        the whole statement).  Rows targeting keys *not yet in the dataset*
        are buffered until a key has two distinct instants and then
        **appended** (:meth:`repro.core.engine.HermesEngine.append`) —
        caches are maintained, not invalidated, and a durable engine
        commits one delta partition per statement.  Rows that add points to
        an existing trajectory force the fallback full re-materialisation
        (:meth:`_insert_rebuild`).  Ingestion scripts should batch rows into
        multi-row ``INSERT INTO d VALUES (...), (...), ...`` statements:
        each *statement* is one append commit, like a DBMS transaction.
        """
        name = plan.dataset
        if name not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {name!r}; CREATE DATASET it first")
        coerced: list[tuple[tuple[str, str], tuple[float, float, float]]] = []
        for row in plan.rows:
            if len(row) != 5:
                raise SQLExecutionError(
                    "INSERT rows must be (obj_id, traj_id, x, y, t); got "
                    f"{len(row)} values"
                )
            obj_id, traj_id, x, y, t = row
            try:
                coerced.append(
                    ((str(obj_id), str(traj_id)), (float(t), float(x), float(y)))
                )
            except (TypeError, ValueError) as exc:
                raise SQLExecutionError(
                    f"INSERT x/y/t values must be numeric; bad row {row!r}"
                ) from exc
        mod = self.engine.get_mod(name)
        if any(key in mod for key, _ in coerced):
            return self._insert_rebuild(name, coerced)
        buffer = self._buffer_for(name)
        for (obj_id, traj_id), (t, x, y) in coerced:
            buffer.add_point(obj_id, traj_id, x, y, t)
        completed = buffer.drain_complete()
        if completed:
            # Appends do not move the replacement generation the buffer is
            # keyed on, so the remaining incomplete points survive as-is.
            self.engine.append(name, completed)
        return [{"inserted": len(coerced)}]

    def _insert_rebuild(
        self,
        name: str,
        coerced: list[tuple[tuple[str, str], tuple[float, float, float]]],
    ) -> list[dict[str, object]]:
        """Fallback for inserts that modify existing trajectories.

        Merges the materialised dataset, the buffered incomplete points and
        the statement's rows into one point set and re-materialises it
        through ``engine.load_mod`` — a *replacement* that invalidates the
        frame/tree caches, because existing trajectories changed shape.
        Keys still short of two distinct instants stay buffered.
        """
        buffer = self._buffer_for(name)
        merged: dict[tuple[str, str], list[tuple[float, float, float]]] = defaultdict(list)
        for traj in self.engine.get_mod(name):
            for i in range(traj.num_points):
                merged[(traj.obj_id, traj.traj_id)].append(
                    (float(traj.ts[i]), float(traj.xs[i]), float(traj.ys[i]))
                )
        for key, samples in buffer.pending.items():
            merged[key].extend(samples)
        for key, sample in coerced:
            merged[key].append(sample)
        mod = MOD(name=name)
        leftovers: dict[tuple[str, str], list[tuple[float, float, float]]] = {}
        for key, samples in merged.items():
            traj = AppendBuffer._assemble(key, samples)
            if traj is None:
                leftovers[key] = samples
            else:
                mod.add(traj)
        self.engine.load_mod(name, mod)
        buffer.pending = leftovers
        # Our own replacement: re-key the buffer at the new replacement
        # generation so the leftovers survive it.
        self._buffer_generation[name] = self.engine.dataset_replacement_generation(name)
        return [{"inserted": len(coerced)}]

    # -- queries over point records ------------------------------------------------------------

    def _iter_point_rows(self, mod: MOD) -> Iterator[dict[str, object]]:
        for traj in mod:
            for i in range(traj.num_points):
                yield {
                    "obj_id": traj.obj_id,
                    "traj_id": traj.traj_id,
                    "x": float(traj.xs[i]),
                    "y": float(traj.ys[i]),
                    "t": float(traj.ts[i]),
                }

    @staticmethod
    def _check_predicates(predicates: tuple[Comparison, ...]) -> None:
        """Reject unknown columns/operators before any row streams.

        The SQL parser already validates these, but the fluent path builds
        ``Comparison`` triples directly — without this check a typo would
        surface as a bare ``KeyError`` mid-fetch instead of an SQL error at
        execute time.
        """
        for pred in predicates:
            if pred.column not in _POINT_COLUMNS:
                raise SQLExecutionError(
                    f"unknown predicate column {pred.column!r}; point tables "
                    f"have columns {sorted(_POINT_COLUMNS)}"
                )
            if pred.op not in _OPERATORS:
                raise SQLExecutionError(
                    f"unknown operator {pred.op!r}; supported: {sorted(_OPERATORS)}"
                )

    @staticmethod
    def _matches(row: dict[str, object], predicates: tuple[Comparison, ...]) -> bool:
        for pred in predicates:
            op = _OPERATORS[pred.op]
            try:
                if not op(row[pred.column], pred.value):
                    return False
            except TypeError as exc:
                # Bound parameters can smuggle arbitrary objects into
                # predicates; surface an SQL error, not a bare TypeError
                # deep inside a fetch.
                raise SQLExecutionError(
                    f"cannot compare column {pred.column!r} with {pred.value!r}"
                ) from exc
        return True

    def _count(self, plan: CountPlan) -> list[dict[str, object]]:
        if plan.dataset not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {plan.dataset!r}")
        self._check_predicates(plan.predicates)
        mod = self.engine.get_mod(plan.dataset)
        count = sum(
            1 for row in self._iter_point_rows(mod) if self._matches(row, plan.predicates)
        )
        return [{"count": count}]

    def _scan(self, plan: ScanPlan) -> ResultSet:
        if plan.dataset not in self.engine.datasets():
            raise SQLExecutionError(f"unknown dataset {plan.dataset!r}")
        columns = _POINT_COLUMNS if plan.columns == ("*",) else plan.columns
        unknown = set(columns) - set(_POINT_COLUMNS)
        if unknown:
            raise SQLExecutionError(f"unknown columns {sorted(unknown)}")
        if plan.order_by is not None and plan.order_by not in _POINT_COLUMNS:
            raise SQLExecutionError(f"unknown ORDER BY column {plan.order_by!r}")
        self._check_predicates(plan.predicates)
        if plan.limit is None:
            limit = None
        elif isinstance(plan.limit, (int, float)):
            limit = int(plan.limit)
            if limit < 0:  # only reachable via a bound :n placeholder
                raise SQLExecutionError(f"LIMIT must be non-negative, got {limit}")
        else:  # a bound :n placeholder may carry anything
            raise SQLExecutionError(f"LIMIT must be numeric, got {plan.limit!r}")
        # Capture the MOD now: a concurrently dropped/replaced dataset does
        # not invalidate rows already flowing through an open cursor.
        mod = self.engine.get_mod(plan.dataset)

        def produce() -> Iterator[dict[str, object]]:
            matching = (
                row for row in self._iter_point_rows(mod) if self._matches(row, plan.predicates)
            )
            if plan.order_by is not None:
                # Ordering is a pipeline breaker: materialise, sort, re-stream.
                rows = sorted(
                    matching, key=lambda r: r[plan.order_by], reverse=plan.descending
                )
                matching = iter(rows)
            produced = 0
            for row in matching:
                if limit is not None and produced >= limit:
                    return
                produced += 1
                yield {col: row[col] for col in columns}

        return ResultSet(produce(), columns=tuple(columns))


def iter_script(
    executor: "PlanExecutor", sql: str
) -> Iterator[list[dict[str, object]]]:
    """Run a ``;``-separated script, yielding one result set at a time.

    The script is parsed up front (so syntax errors surface before any
    statement runs), but each statement only *executes* when the generator
    is advanced, and only its own result rows are held — a multi-statement
    script never keeps every statement's full result set alive at once.
    Statement splitting is token-aware; ``;`` inside string literals is
    data, not a separator.  Shared by :meth:`SQLExecutor.execute_script`
    and :meth:`repro.api.Connection.executescript`.
    """
    plans = plan_sql_script(sql)

    def run() -> Iterator[list[dict[str, object]]]:
        for plan in plans:
            yield list(executor.execute(plan))

    return run()


class SQLExecutor:
    """Parses and executes SQL statements, returning rows as dicts.

    Historical facade kept for compatibility: ``execute`` materialises the
    full result list.  New code should prefer the connection/cursor API
    (:mod:`repro.api`), which streams.
    """

    def __init__(self, engine: HermesEngine) -> None:
        self.engine = engine
        self._executor = engine.plan_executor()

    def forget(self, name: str) -> None:
        """Discard buffered state for a dataset (called by ``engine.drop``)."""
        self._executor.forget(name)

    # -- public API ----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Mapping[str, object] | Sequence[object] | None = None,
    ) -> list[dict[str, object]]:
        """Execute one statement (binding ``params``) and return its rows.

        ``EXPLAIN`` statements render unbound placeholders as-is.
        """
        plan = bind_for_execution(plan_sql(sql), params)
        return list(self._executor.execute(plan))

    def execute_script(
        self, sql: str
    ) -> Iterator[list[dict[str, object]]]:
        """Execute a ``;``-separated script lazily (see :func:`iter_script`).

        .. warning:: behaviour change in public API v1 — this used to run
           every statement eagerly and return a list of result lists; it now
           returns a generator, and statements only execute as it is
           advanced.  Callers running a script purely for its side effects
           must drain the generator (e.g. ``for _ in ex.execute_script(s):
           pass``) or nothing runs.
        """
        return iter_script(self._executor, sql)
