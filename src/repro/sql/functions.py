"""Table functions exposed through the SQL front-end.

These are the Python counterparts of the stored procedures the paper's
Hermes@PostgreSQL API offers; each takes the positional arguments of its SQL
call and returns a list of dict rows.

The flagship is the paper's own signature::

    SELECT QUT(D, Wi, We, tau, delta, t, d, gamma);

All numeric arguments after the dataset name are optional; omitted ones fall
back to the data-driven defaults of the underlying parameter objects.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.convoy import ConvoyParams
from repro.baselines.toptics import TOpticsParams
from repro.baselines.traclus import TraclusParams
from repro.core.engine import HermesEngine
from repro.hermes.types import Period
from repro.qut.params import QuTParams
from repro.s2t.params import S2TParams
from repro.s2t.result import ClusteringResult
from repro.sql.errors import SQLExecutionError
from repro.va.histogram import cluster_time_histogram
from repro.va.patterns import detect_holding_patterns

__all__ = ["FUNCTIONS", "call_function"]


def _cluster_rows(result: ClusteringResult) -> list[dict[str, object]]:
    """The standard result-set shape of every clustering table function."""
    rows: list[dict[str, object]] = []
    for cluster in result.clusters:
        period = cluster.period
        rows.append(
            {
                "cluster_id": cluster.cluster_id,
                "members": cluster.size,
                "objects": len(cluster.object_ids()),
                "tmin": round(period.tmin, 3),
                "tmax": round(period.tmax, 3),
                "representative_obj": cluster.representative.obj_id,
            }
        )
    rows.append(
        {
            "cluster_id": "outliers",
            "members": result.num_outliers,
            "objects": len({o.obj_id for o in result.outliers}),
            "tmin": "-",
            "tmax": "-",
            "representative_obj": "-",
        }
    )
    return rows


def _require_dataset(args: tuple, function: str) -> str:
    if not args or not isinstance(args[0], str):
        raise SQLExecutionError(f"{function} requires a dataset name as its first argument")
    return args[0]


def _opt_float(args: tuple, idx: int) -> float | None:
    if len(args) <= idx or args[idx] is None:
        return None
    value = args[idx]
    if not isinstance(value, (int, float)):
        raise SQLExecutionError(f"argument {idx + 1} must be numeric, got {value!r}")
    return float(value)


def _opt_int(args: tuple, idx: int, default: int) -> int:
    value = _opt_float(args, idx)
    return default if value is None else int(value)


def _opt_str(args: tuple, idx: int, default: str) -> str:
    if len(args) <= idx or args[idx] is None:
        return default
    value = args[idx]
    if not isinstance(value, str):
        raise SQLExecutionError(f"argument {idx + 1} must be a string, got {value!r}")
    return value


# -- the individual functions ----------------------------------------------------------


def _fn_qut(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``QUT(D, Wi, We [, tau, delta, t, d, gamma, shards])``

    ``shards`` selects the index layout: ``N >= 2`` builds (or reuses) a
    sharded ReTraTree deployment whose scatter-gather answers are
    bit-identical to the single tree's; omitted/NULL accepts whatever
    layout is cached or persisted.
    """
    dataset = _require_dataset(args, "QUT")
    wi = _opt_float(args, 1)
    we = _opt_float(args, 2)
    if wi is None or we is None:
        raise SQLExecutionError("QUT requires the window bounds Wi and We")
    params = QuTParams(
        tau=_opt_float(args, 3),
        delta=_opt_float(args, 4),
        temporal_tolerance=_opt_float(args, 5) or 0.0,
        distance_threshold=_opt_float(args, 6),
        gamma=_opt_int(args, 7, 2),
    )
    shards = _opt_float(args, 8)
    try:
        result = engine.qut(
            dataset,
            Period(wi, we),
            params=params,
            shards=None if shards is None else int(shards),
        )
    except ValueError as exc:
        raise SQLExecutionError(str(exc)) from exc
    return _cluster_rows(result)


def _fn_s2t(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``S2T(D [, sigma, eps, gamma, strategy, jobs, shards])``

    ``strategy`` selects the voting execution path: ``'dense'``,
    ``'indexed'`` or ``'batched'`` (default) — see :mod:`repro.s2t.voting`.
    ``jobs > 1`` runs the partition-parallel scheduler
    (:mod:`repro.core.parallel`) with that many worker processes; note that
    partitioned S2T is a coarser operator than the whole-MOD fit (clusters
    cannot span partition boundaries), so its memberships differ from
    ``jobs = 1``.  ``shards`` overrides the scheduler's temporal partition
    count (each shard is one partition; omitted/NULL keeps the default).
    """
    dataset = _require_dataset(args, "S2T")
    strategy = _opt_str(args, 4, "batched")
    try:
        params = S2TParams(
            sigma=_opt_float(args, 1),
            eps=_opt_float(args, 2),
            min_cluster_support=_opt_int(args, 3, 2),
            voting_strategy=strategy,
            n_jobs=_opt_int(args, 5, 1),
        )
    except ValueError as exc:
        raise SQLExecutionError(str(exc)) from exc
    shards = _opt_float(args, 6)
    return _cluster_rows(
        engine.s2t(
            dataset, params, n_partitions=None if shards is None else int(shards)
        )
    )


def _fn_traclus(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``TRACLUS(D [, eps, min_lns])``"""
    dataset = _require_dataset(args, "TRACLUS")
    params = TraclusParams(eps=_opt_float(args, 1), min_lns=_opt_int(args, 2, 3))
    return _cluster_rows(engine.traclus(dataset, params))


def _fn_toptics(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``TOPTICS(D [, eps_cut, min_pts])``"""
    dataset = _require_dataset(args, "TOPTICS")
    params = TOpticsParams(eps_cut=_opt_float(args, 1), min_pts=_opt_int(args, 2, 3))
    return _cluster_rows(engine.toptics(dataset, params))


def _fn_convoy(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``CONVOY(D [, eps, m, k])``"""
    dataset = _require_dataset(args, "CONVOY")
    params = ConvoyParams(
        eps=_opt_float(args, 1),
        min_objects=_opt_int(args, 2, 3),
        min_duration_snapshots=_opt_int(args, 3, 3),
    )
    return _cluster_rows(engine.convoy(dataset, params))


def _fn_summary(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``SUMMARY(D)``"""
    dataset = _require_dataset(args, "SUMMARY")
    return [engine.dataset_summary(dataset)]


def _fn_cluster_histogram(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``CLUSTER_HISTOGRAM(D [, n_bins])`` — over the dataset's last clustering result."""
    dataset = _require_dataset(args, "CLUSTER_HISTOGRAM")
    n_bins = _opt_int(args, 1, 60)
    try:
        result = engine.last_result(dataset)
    except KeyError as exc:
        raise SQLExecutionError(str(exc)) from exc
    return cluster_time_histogram(result, n_bins=n_bins).to_rows()


def _fn_holding_patterns(engine: HermesEngine, args: tuple) -> list[dict[str, object]]:
    """``HOLDING_PATTERNS(D [, min_turns])`` — loop detection over the raw dataset."""
    dataset = _require_dataset(args, "HOLDING_PATTERNS")
    min_turns = _opt_float(args, 1) or 0.9
    patterns = detect_holding_patterns(engine.get_mod(dataset), min_turns=min_turns)
    return [
        {
            "obj_id": p.obj_id,
            "tmin": round(p.period.tmin, 3),
            "tmax": round(p.period.tmax, 3),
            "center_x": round(p.center[0], 3),
            "center_y": round(p.center[1], 3),
            "radius": round(p.radius, 3),
            "turns": round(p.turns, 2),
        }
        for p in patterns
    ]


FUNCTIONS: dict[str, Callable[[HermesEngine, tuple], list[dict[str, object]]]] = {
    "QUT": _fn_qut,
    "S2T": _fn_s2t,
    "TRACLUS": _fn_traclus,
    "TOPTICS": _fn_toptics,
    "CONVOY": _fn_convoy,
    "SUMMARY": _fn_summary,
    "CLUSTER_HISTOGRAM": _fn_cluster_histogram,
    "HOLDING_PATTERNS": _fn_holding_patterns,
}


def call_function(engine: HermesEngine, name: str, args: tuple) -> list[dict[str, object]]:
    """Dispatch a ``SELECT FUNC(...)`` call to its implementation."""
    try:
        fn = FUNCTIONS[name]
    except KeyError as exc:
        raise SQLExecutionError(
            f"unknown function {name}; available: {sorted(FUNCTIONS)}"
        ) from exc
    return fn(engine, args)
