"""Documentation-site generator (the engine behind ``repro-docs``).

Builds a static HTML site from the markdown sources under ``docs/`` plus an
**API reference generated from live docstrings** — no third-party
dependency (Sphinx/MkDocs are optional niceties; this builder is the one CI
gates on, so the docs build everywhere the code builds).  An
MkDocs-compatible ``mkdocs.yml`` at the repository root points at the same
sources for anyone who prefers ``mkdocs serve`` locally.

The build is *strict by default* — warnings are errors — and checks:

* every public symbol reachable from the API-reference targets (the
  ``repro.api`` surface, ``repro.connect``, ``HermesEngine``, ``MODFrame``,
  ``ReTraTree``, the ingestion and session layers, the parameter objects)
  has a docstring;
* the SQL dialect page documents **every** statement form the parser
  accepts, every registered table function, both parameter-binding forms
  and every error class;
* internal markdown links point at pages that exist.

Usage::

    repro-docs                    # build docs/_site from docs/
    repro-docs --out /tmp/site    # build elsewhere
    make docs                     # same build via the Makefile
"""

from __future__ import annotations

import argparse
import html
import inspect
import re
import sys
from pathlib import Path

__all__ = ["build_site", "main", "API_TARGETS", "SQL_COVERAGE_TERMS"]

# -- what the API reference documents -----------------------------------------
# (module, symbols) pairs; ``None`` documents the module's ``__all__``.
API_TARGETS: tuple[tuple[str, tuple[str, ...] | None], ...] = (
    ("repro", ("connect",)),
    ("repro.api", None),
    ("repro.core.engine", ("HermesEngine",)),
    ("repro.core.ingest", None),
    ("repro.core.parallel", ("WorkerPool", "partitioned_s2t")),
    ("repro.core.session", ("ProgressiveSession", "SessionStep")),
    ("repro.core.shard", ("ShardPlan", "ShardedReTraTree", "build_sharded_tree")),
    ("repro.hermes.frame", ("MODFrame",)),
    ("repro.hermes.mod", ("MOD",)),
    ("repro.hermes.shm", None),
    ("repro.qut.retratree", None),
    ("repro.qut.params", ("QuTParams",)),
    ("repro.s2t.params", ("S2TParams",)),
    ("repro.datagen.profiles", None),
    ("repro.eval.quality", None),
    ("repro.analysis", ("Checker", "Finding", "SourceModule", "lint_paths", "select_checkers")),
    ("repro.sql.errors", None),
    ("repro.storage.errors", None),
    ("repro.storage.faults", None),
    ("repro.storage.fsck", None),
)

# Markdown pages, in navigation order, with their nav titles.
NAV: tuple[tuple[str, str], ...] = (
    ("index.md", "Overview"),
    ("architecture.md", "Architecture"),
    ("ingestion.md", "Incremental ingestion"),
    ("persistence.md", "Persistence & recovery"),
    ("sql-dialect.md", "SQL dialect"),
    ("quality-harness.md", "Quality harness"),
    ("static-analysis.md", "Static analysis"),
)

_STYLE = """
:root { --ink: #1c2430; --dim: #5b6377; --line: #e3e7ee; --accent: #1a5fb4; }
* { box-sizing: border-box; }
body { margin: 0; font: 16px/1.6 system-ui, sans-serif; color: #1c2430; }
nav { position: fixed; top: 0; left: 0; bottom: 0; width: 230px; padding: 24px 18px;
      border-right: 1px solid #e3e7ee; background: #f8f9fb; overflow-y: auto; }
nav h1 { font-size: 16px; margin: 0 0 12px; }
nav a { display: block; padding: 4px 6px; color: #1a5fb4; text-decoration: none;
        border-radius: 4px; }
nav a:hover { background: #e9eef7; }
nav .section { margin-top: 14px; font-weight: 600; color: #5b6377; font-size: 13px;
               text-transform: uppercase; letter-spacing: .04em; }
main { margin-left: 230px; padding: 32px 48px; max-width: 880px; }
code { background: #f2f4f8; padding: 1px 4px; border-radius: 3px;
       font: 13.5px/1.5 ui-monospace, monospace; }
pre { background: #f6f8fa; border: 1px solid #e3e7ee; border-radius: 6px;
      padding: 12px 14px; overflow-x: auto; }
pre code { background: none; padding: 0; }
table { border-collapse: collapse; margin: 12px 0; }
th, td { border: 1px solid #e3e7ee; padding: 6px 10px; text-align: left; }
th { background: #f2f4f8; }
h1, h2, h3 { line-height: 1.25; }
h2 { border-bottom: 1px solid #e3e7ee; padding-bottom: 4px; margin-top: 36px; }
.symbol { border: 1px solid #e3e7ee; border-radius: 6px; padding: 14px 18px;
          margin: 18px 0; }
.symbol > .sig { font: 14px/1.5 ui-monospace, monospace; font-weight: 600; }
.symbol .doc { margin: 8px 0 0; white-space: pre-wrap;
               font: 13.5px/1.55 ui-monospace, monospace; color: #39414e;
               background: none; border: none; padding: 0; }
.member { margin: 12px 0 12px 18px; padding-left: 14px; border-left: 3px solid #e3e7ee; }
"""


# -- tiny markdown renderer ----------------------------------------------------

_INLINE_PATTERNS = (
    (re.compile(r"`([^`]+)`"), lambda m: f"<code>{m.group(1)}</code>"),
    (re.compile(r"\*\*([^*]+)\*\*"), lambda m: f"<strong>{m.group(1)}</strong>"),
    (re.compile(r"(?<!\*)\*([^*\s][^*]*)\*(?!\*)"), lambda m: f"<em>{m.group(1)}</em>"),
    (
        re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)"),
        lambda m: f'<a href="{m.group(2)}">{m.group(1)}</a>',
    ),
)


def _inline(text: str) -> str:
    """Render inline markdown (code, bold, italic, links) on escaped text."""
    out = html.escape(text, quote=False)
    for pattern, sub in _INLINE_PATTERNS:
        out = pattern.sub(sub, out)
    return out


def md_to_html(markdown: str) -> str:
    """Convert a markdown page to an HTML fragment.

    Supports the subset the docs sources use: ATX headings, fenced code
    blocks, tables, unordered/ordered lists, blockquotes, horizontal rules
    and the inline forms of :func:`_inline`.  Link targets ending in
    ``.md`` are rewritten to ``.html`` so the rendered site is
    self-contained.
    """
    lines = markdown.replace("\r\n", "\n").split("\n")
    out: list[str] = []
    i = 0
    in_list: str | None = None
    paragraph: list[str] = []

    def flush_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def close_list() -> None:
        nonlocal in_list
        if in_list:
            out.append(f"</{in_list}>")
            in_list = None

    while i < len(lines):
        line = lines[i]
        stripped = line.strip()
        if stripped.startswith("```"):
            flush_paragraph()
            close_list()
            language = stripped[3:].strip()
            block: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                block.append(lines[i])
                i += 1
            cls = f' class="language-{language}"' if language else ""
            out.append(
                f"<pre><code{cls}>" + html.escape("\n".join(block)) + "</code></pre>"
            )
            i += 1
            continue
        if not stripped:
            flush_paragraph()
            close_list()
            i += 1
            continue
        heading = re.match(r"^(#{1,5})\s+(.*)$", stripped)
        if heading:
            flush_paragraph()
            close_list()
            level = len(heading.group(1))
            text = heading.group(2)
            anchor = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
            out.append(f'<h{level} id="{anchor}">{_inline(text)}</h{level}>')
            i += 1
            continue
        if re.match(r"^-{3,}$", stripped):
            flush_paragraph()
            close_list()
            out.append("<hr/>")
            i += 1
            continue
        if stripped.startswith("|"):
            flush_paragraph()
            close_list()
            rows: list[str] = []
            while i < len(lines) and lines[i].strip().startswith("|"):
                rows.append(lines[i].strip())
                i += 1
            out.append(_render_table(rows))
            continue
        if stripped.startswith(">"):
            flush_paragraph()
            close_list()
            quote: list[str] = []
            while i < len(lines) and lines[i].strip().startswith(">"):
                quote.append(lines[i].strip().lstrip(">").strip())
                i += 1
            out.append(f"<blockquote><p>{_inline(' '.join(quote))}</p></blockquote>")
            continue
        bullet = re.match(r"^[-*]\s+(.*)$", stripped)
        ordered = re.match(r"^\d+\.\s+(.*)$", stripped)
        if bullet or ordered:
            flush_paragraph()
            tag = "ul" if bullet else "ol"
            if in_list != tag:
                close_list()
                out.append(f"<{tag}>")
                in_list = tag
            item = (bullet or ordered).group(1)  # type: ignore[union-attr]
            out.append(f"<li>{_inline(item)}</li>")
            i += 1
            continue
        paragraph.append(stripped)
        i += 1
    flush_paragraph()
    close_list()
    return re.sub(r'href="([^"#]+)\.md(#[^"]*)?"', r'href="\1.html\2"', "\n".join(out))


def _render_table(rows: list[str]) -> str:
    def cells(row: str) -> list[str]:
        return [c.strip() for c in row.strip("|").split("|")]

    body = [r for r in rows if not re.match(r"^\|[\s:|-]+\|$", r)]
    if not body:
        return ""
    parts = ["<table>"]
    header = body[0]
    parts.append(
        "<tr>" + "".join(f"<th>{_inline(c)}</th>" for c in cells(header)) + "</tr>"
    )
    for row in body[1:]:
        parts.append(
            "<tr>" + "".join(f"<td>{_inline(c)}</td>" for c in cells(row)) + "</tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


# -- API reference generation --------------------------------------------------


def _signature_of(obj: object, name: str) -> str:
    try:
        return f"{name}{inspect.signature(obj)}"  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return name


def _doc_of(obj: object) -> str | None:
    doc = inspect.getdoc(obj)
    return doc.strip() if doc else None


def _public_members(cls: type) -> list[tuple[str, object]]:
    """A class's public methods/properties, in source order where possible."""
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if callable(member) or isinstance(member, (property, classmethod, staticmethod)):
            members.append((name, member))
    return members


def _render_symbol(
    module_name: str, name: str, obj: object, warnings: list[str]
) -> str:
    """One documented symbol (class with members, or function) as HTML."""
    qualname = f"{module_name}.{name}"
    parts: list[str] = ['<div class="symbol">']
    doc = _doc_of(obj)
    if doc is None:
        warnings.append(f"missing docstring: {qualname}")
        doc = "(undocumented)"
    if inspect.isclass(obj):
        parts.append(f'<div class="sig" id="{name}">class {qualname}</div>')
        parts.append(f'<pre class="doc">{html.escape(doc)}</pre>')
        for member_name, raw in _public_members(obj):
            member = getattr(obj, member_name)
            member_doc = _doc_of(member)
            if member_doc is None:
                warnings.append(f"missing docstring: {qualname}.{member_name}")
                member_doc = "(undocumented)"
            if isinstance(raw, property):
                sig = f"{member_name}  [property]"
            else:
                sig = _signature_of(member, member_name)
            parts.append(
                '<div class="member">'
                f'<div class="sig">{html.escape(sig)}</div>'
                f'<pre class="doc">{html.escape(member_doc)}</pre>'
                "</div>"
            )
    else:
        sig = _signature_of(obj, name)
        parts.append(f'<div class="sig" id="{name}">{html.escape(f"{module_name}.{sig}")}</div>')
        parts.append(f'<pre class="doc">{html.escape(doc)}</pre>')
    parts.append("</div>")
    return "\n".join(parts)


def _api_pages(warnings: list[str]) -> dict[str, tuple[str, str]]:
    """Generate the API reference: ``{filename: (title, html_fragment)}``."""
    import importlib

    pages: dict[str, tuple[str, str]] = {}
    for module_name, symbols in API_TARGETS:
        module = importlib.import_module(module_name)
        names = list(symbols) if symbols is not None else list(
            getattr(module, "__all__", [])
        )
        if not names:
            warnings.append(f"API target {module_name} exports nothing to document")
            continue
        fragment: list[str] = [f"<h1>{html.escape(module_name)}</h1>"]
        module_doc = _doc_of(module)
        if module_doc is None:
            warnings.append(f"missing docstring: module {module_name}")
        else:
            summary = module_doc.split("\n\n")[0]
            fragment.append(f'<pre class="doc">{html.escape(summary)}</pre>')
        for name in names:
            if not hasattr(module, name):
                warnings.append(f"API target {module_name}.{name} does not exist")
                continue
            obj = getattr(module, name)
            if isinstance(obj, str):  # e.g. __version__ strings
                continue
            fragment.append(_render_symbol(module_name, name, obj, warnings))
        filename = "api-" + module_name.replace(".", "-") + ".html"
        pages[filename] = (module_name, "\n".join(fragment))
    return pages


# -- SQL-dialect coverage ------------------------------------------------------


def _sql_coverage_terms() -> list[str]:
    """Every term the SQL dialect page must mention.

    Statements come from the parser's grammar, functions from the live
    registry (:data:`repro.sql.functions.FUNCTIONS`) so a newly registered
    function fails the docs build until documented, binding forms and
    error classes from their modules.
    """
    from repro.sql.errors import __all__ as error_names
    from repro.sql.functions import FUNCTIONS

    statements = [
        "SHOW DATASETS",
        "CREATE DATASET",
        "DROP DATASET",
        "LOAD DATASET",
        "INSERT INTO",
        "SELECT COUNT(*)",
        "SELECT",
        "ORDER BY",
        "LIMIT",
        "WHERE",
        "EXPLAIN",
    ]
    bindings = [":name", "?"]
    errors = [name for name in error_names if not name.startswith("format")]
    return statements + sorted(FUNCTIONS) + bindings + errors


SQL_COVERAGE_TERMS = _sql_coverage_terms


# -- site assembly -------------------------------------------------------------


def _page_shell(title: str, nav_html: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'/>"
        f"<title>{html.escape(title)} — repro-s2t</title>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'/>"
        "<link rel='stylesheet' href='style.css'/></head>"
        f"<body><nav>{nav_html}</nav><main>{body}</main></body></html>\n"
    )


def build_site(source: Path, out: Path) -> list[str]:
    """Build the site from ``source`` into ``out``; returns the warnings.

    The build always completes (every page is written even when warnings
    accumulate) so the rendered output can be inspected; strictness is the
    caller's policy (:func:`main` exits non-zero on warnings unless
    ``--no-strict``).
    """
    warnings: list[str] = []
    out.mkdir(parents=True, exist_ok=True)
    (out / "style.css").write_text(_STYLE)

    api_pages = _api_pages(warnings)

    nav_parts = ["<h1>repro-s2t</h1>"]
    for filename, title in NAV:
        nav_parts.append(f'<a href="{filename[:-3]}.html">{html.escape(title)}</a>')
    nav_parts.append('<div class="section">API reference</div>')
    for filename, (module_name, _) in sorted(api_pages.items()):
        nav_parts.append(f'<a href="{filename}">{html.escape(module_name)}</a>')
    nav_html = "\n".join(nav_parts)

    page_names = {filename for filename, _ in NAV}
    for filename, title in NAV:
        path = source / filename
        if not path.exists():
            warnings.append(f"missing docs page: {filename}")
            continue
        text = path.read_text()
        for match in re.finditer(r"\]\(([^)#\s]+\.md)(#[^)]*)?\)", text):
            target = match.group(1)
            if not target.startswith(("http:", "https:")) and target not in page_names:
                if not (source / target).exists():
                    warnings.append(f"{filename}: broken link to {target}")
        if filename == "sql-dialect.md":
            for term in _sql_coverage_terms():
                if term not in text:
                    warnings.append(f"sql-dialect.md does not document {term!r}")
        (out / f"{filename[:-3]}.html").write_text(
            _page_shell(title, nav_html, md_to_html(text))
        )

    for filename, (module_name, fragment) in api_pages.items():
        (out / filename).write_text(_page_shell(module_name, nav_html, fragment))
    return warnings


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``repro-docs`` (and ``python -m repro.docsgen``)."""
    parser = argparse.ArgumentParser(
        prog="repro-docs",
        description="Build the documentation site (stdlib-only, strict by default).",
    )
    parser.add_argument(
        "--source", default="docs", help="directory holding the markdown sources"
    )
    parser.add_argument(
        "--out", default=None, help="output directory (default: <source>/_site)"
    )
    parser.add_argument(
        "--no-strict",
        action="store_true",
        help="report warnings without failing the build",
    )
    args = parser.parse_args(argv)
    source = Path(args.source)
    if not source.exists():
        print(f"docs source directory {source} does not exist", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else source / "_site"
    warnings = build_site(source, out)
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    print(f"site written to {out} ({len(warnings)} warning(s))")
    if warnings and not args.no_strict:
        print("strict mode: warnings are errors", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - direct execution helper
    sys.exit(main())
