"""Structured corruption diagnostics for the storage layer.

Robustness rule number one for the durable engine: a damaged store must
*fail loudly with a diagnosis*, never feed wrong bytes into query answers.
These exception types are how every detection site (page checksum
verification, manifest integrity checks, heapfile decoding, catalog
recovery) reports what it found:

* :class:`StorageError` — root of the storage layer's *exception
  contract*: the only project type public storage functions are allowed
  to let escape (machine-checked by lint rule REPRO111),
* :class:`StorageCorruptionError` — base for corruption findings; every
  message carries the remediation hint (``run repro-fsck``) so an
  operator landing on a stack trace knows the next step,
* :class:`CorruptPartitionError` — a partition heapfile failed validation;
  names the file, the byte offset of the first bad page and the partition
  generation parsed from its ``_g<N>`` suffix,
* :class:`CorruptManifestError` — the catalog's ``manifest.json`` root is
  unreadable or fails its integrity check.

Both concrete types also subclass :class:`ValueError`, so call sites that
historically handled decoding problems generically (``except ValueError``)
keep working; the subclassing only *adds* structure.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = [
    "StorageError",
    "StorageCorruptionError",
    "CorruptPartitionError",
    "CorruptManifestError",
    "partition_generation",
]

#: The remediation hint appended to every corruption diagnostic.
REMEDIATION = "run `repro-fsck <storage-dir>` to diagnose and `--repair` to recover"

_GENERATION_RE = re.compile(r"_g(\d+)$")


def partition_generation(name: str | Path) -> int | None:
    """The generation number of a ``…_g<N>`` partition name, or ``None``.

    Accepts a bare partition name, a ``.part`` filename or a full path;
    the generation is the trailing ``_g<N>`` suffix the engine stamps on
    staged dataset/representatives partitions.
    """
    stem = Path(name).stem if isinstance(name, (Path, str)) else str(name)
    match = _GENERATION_RE.search(str(stem))
    return int(match.group(1)) if match else None


class StorageError(RuntimeError):
    """Base class for every error the storage layer's public surface raises.

    The exception *contract* of ``repro.storage`` (machine-checked by the
    REPRO111 lint rule): a public storage function may only let
    ``StorageError`` subclasses escape, plus a short documented list of
    pass-through builtins (``ValueError``, ``KeyError``, ``OSError``...).
    Callers therefore get one type to catch that cleanly separates "the
    store is damaged or misused, here is what to do" from a programming
    bug.  Subclasses :class:`RuntimeError` so pre-existing callers that
    caught ``RuntimeError`` keep working.
    """


class StorageCorruptionError(StorageError):
    """Base class for on-disk corruption detected by the storage layer.

    Subclasses :class:`StorageError` via :class:`RuntimeError`
    (catalogued-but-damaged state has always surfaced as
    ``RuntimeError``); the message always ends with the fsck remediation
    hint.
    """

    #: What an operator should do about it.
    remediation = REMEDIATION

    def __init__(self, message: str) -> None:
        super().__init__(f"{message}; {self.remediation}")


class CorruptPartitionError(StorageCorruptionError, ValueError):
    """A partition file failed checksum/size/decode validation.

    Attributes
    ----------
    path:
        The partition file that failed validation (``None`` when the
        failure is not tied to one file).
    offset:
        Byte offset of the first failing page/record inside the file, or
        ``None`` when unknown.
    generation:
        The partition generation parsed from the ``_g<N>`` name suffix, or
        ``None`` for unsuffixed partitions.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        offset: int | None = None,
        generation: int | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.offset = offset
        if generation is None and path is not None:
            generation = partition_generation(Path(path))
        self.generation = generation
        where = []
        if self.path is not None:
            where.append(f"file={self.path}")
        if self.offset is not None:
            where.append(f"offset={self.offset}")
        if self.generation is not None:
            where.append(f"generation={self.generation}")
        suffix = f" [{', '.join(where)}]" if where else ""
        super().__init__(f"{message}{suffix}")


class CorruptManifestError(StorageCorruptionError, ValueError):
    """The catalog manifest is unreadable or fails its integrity check.

    Attributes
    ----------
    path:
        The manifest file (or the dataset directory) the failure concerns,
        when known.
    """

    def __init__(self, message: str, *, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        suffix = f" [file={self.path}]" if self.path is not None else ""
        super().__init__(f"{message}{suffix}")
