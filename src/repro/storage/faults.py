"""Fault injection: an OS-call shim for crash and I/O-error testing.

Every mutating OS call the storage layer makes — page writes, fsyncs, the
manifest's atomic rename, file unlinks — goes through an :class:`IOShim`.
The default shim is a transparent pass-through; tests substitute a
:class:`FaultInjector`, which counts the mutating calls on a deterministic
schedule and can

* **crash** at exactly op ``N`` (:meth:`FaultInjector.arm_crash`), raising
  :class:`InjectedCrash` *instead of* performing the call — optionally
  after writing a torn prefix, to model a power cut mid-``write``;
* inject **transient** ``OSError`` failures (:meth:`FaultInjector.fail_next`)
  that succeed on retry, exercising the bounded-retry paths.

:class:`InjectedCrash` deliberately subclasses :class:`BaseException`, not
:class:`Exception`: a simulated process death must sail through every
``except Exception`` / ``except OSError`` recovery handler in the engine
exactly the way a real ``SIGKILL`` would.  After the crash fires the
injector goes *dead* — all further shimmed calls raise — so nothing the
doomed process does afterwards (flushes on close, sweeps in ``finally``
blocks) can touch the disk.

Files are opened **unbuffered** (``buffering=0``): every ``write`` through
the shim is a real syscall, so a crash loses exactly the operations that
were never issued — no hidden Python-level buffer gets flushed when the
abandoned file objects are garbage collected.

:func:`with_retries` is the companion recovery primitive: bounded retry
with exponential backoff for *transient* I/O errors on read, checkpoint
and manifest paths.  It never retries :class:`InjectedCrash` (crashes are
not transient).
"""

from __future__ import annotations

import errno
import os
import time
from pathlib import Path
from collections.abc import Callable
from typing import TypeVar

__all__ = [
    "IOShim",
    "FaultInjector",
    "InjectedCrash",
    "with_retries",
    "DEFAULT_IO",
]

_T = TypeVar("_T")


class InjectedCrash(BaseException):
    """A simulated process death, raised by an armed :class:`FaultInjector`.

    Subclasses :class:`BaseException` so ordinary ``except Exception``
    recovery code cannot swallow it — exactly like a real kill signal.
    """


class IOShim:
    """Pass-through OS-call layer the storage code routes its I/O through.

    Subclass and override to observe or perturb individual calls; the
    base implementation simply performs them.  All files are opened
    unbuffered so that every shimmed ``write`` reaches the OS immediately
    (see the module docstring for why that matters to crash simulation).
    """

    def open(self, path: str | Path, mode: str):
        """Open ``path`` unbuffered in binary ``mode`` and return the file."""
        return open(path, mode, buffering=0)

    def read(self, fh, n: int = -1) -> bytes:
        """Read up to ``n`` bytes from an open file."""
        return fh.read(n)

    def write(self, fh, data: bytes) -> None:
        """Write ``data`` to an open file at its current position."""
        fh.write(data)

    def fsync(self, fh) -> None:
        """Force an open file's data to stable storage."""
        os.fsync(fh.fileno())

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def unlink(self, path: str | Path) -> None:
        """Delete a file."""
        os.unlink(path)

    def fsync_dir(self, path: str | Path) -> None:
        """Fsync a directory entry, making a rename/unlink itself durable.

        Directory file descriptors are a POSIX notion; on platforms without
        them this degrades to a no-op (the rename stays atomic, just not
        crash-ordered — the best available there).
        """
        try:
            dir_fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX platforms
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def read_bytes(self, path: str | Path) -> bytes:
        """Read a whole file's contents."""
        return Path(path).read_bytes()


#: The shared pass-through shim used when no injector is supplied.
DEFAULT_IO = IOShim()

#: The shimmed call kinds that count as *mutating* operations.
MUTATION_KINDS = ("write", "fsync", "replace", "unlink")


class FaultInjector(IOShim):
    """An :class:`IOShim` that injects crashes and transient I/O errors.

    Mutating calls (``write``/``fsync``/``replace``/``unlink``; a directory
    fsync counts as ``fsync``) are assigned consecutive op indices, logged
    in :attr:`op_log`, and checked against the armed crash point.  Reads
    are never counted — they cannot lose data — but can still fail
    transiently via :meth:`fail_next`.

    Attributes
    ----------
    ops:
        Number of mutating operations performed (or crashed on) so far.
    op_log:
        ``"<kind>:<filename>"`` per counted op, for debugging sweeps.
    dead:
        Set once the crash fired; every further shimmed call raises
        :class:`InjectedCrash` (the process is gone).
    """

    def __init__(self) -> None:
        self.ops = 0
        self.op_log: list[str] = []
        self.dead = False
        self._crash_at: int | None = None
        self._torn = True
        # kind -> [remaining failures, errno]
        self._transient: dict[str, list[int]] = {}

    # -- scheduling ----------------------------------------------------------

    def arm_crash(self, at_op: int, torn: bool = True) -> None:
        """Crash on the mutating op with index ``at_op`` (0-based).

        With ``torn=True`` a crash landing on a ``write`` first writes a
        partial prefix of the data — a torn write; otherwise the op is
        skipped entirely.
        """
        self._crash_at = at_op
        self._torn = torn

    def disarm(self) -> None:
        """Clear the crash point and revive a dead injector."""
        self._crash_at = None
        self.dead = False

    def fail_next(self, kind: str, count: int = 1, err: int = errno.EIO) -> None:
        """Make the next ``count`` calls of ``kind`` raise ``OSError(err)``.

        ``kind`` is one of ``read``/``write``/``fsync``/``replace``/
        ``unlink``.  Transient failures raise *before* performing the call
        and do not consume op indices, so arming them never shifts the
        crash schedule.
        """
        self._transient[kind] = [count, err]

    # -- bookkeeping ---------------------------------------------------------

    def _check_transient(self, kind: str) -> None:
        pending = self._transient.get(kind)
        if pending and pending[0] > 0:
            pending[0] -= 1
            raise OSError(pending[1], f"injected transient {kind} failure")

    def _account(self, kind: str, path: object) -> bool:
        """Count one mutating op; return ``True`` when it is the crash op."""
        if self.dead:
            raise InjectedCrash(f"process is dead (crashed earlier); refused {kind}")
        self._check_transient(kind)
        index = self.ops
        self.ops += 1
        name = Path(getattr(path, "name", None) or str(path)).name
        self.op_log.append(f"{kind}:{name}")
        if self._crash_at is not None and index == self._crash_at:
            self.dead = True
            return True
        return False

    # -- shimmed calls -------------------------------------------------------

    def open(self, path: str | Path, mode: str):
        """Open a file (not counted; a dead injector still refuses it)."""
        if self.dead:
            raise InjectedCrash("process is dead (crashed earlier); refused open")
        return super().open(path, mode)

    def read(self, fh, n: int = -1) -> bytes:
        """Read with transient-failure injection (never counted)."""
        if self.dead:
            raise InjectedCrash("process is dead (crashed earlier); refused read")
        self._check_transient("read")
        return super().read(fh, n)

    def read_bytes(self, path: str | Path) -> bytes:
        """Whole-file read with transient-failure injection (never counted)."""
        if self.dead:
            raise InjectedCrash("process is dead (crashed earlier); refused read")
        self._check_transient("read")
        return super().read_bytes(path)

    def write(self, fh, data: bytes) -> None:
        """Write, honouring the crash schedule (torn prefix when armed)."""
        if self._account("write", getattr(fh, "name", "?")):
            if self._torn and len(data) > 1:
                # A torn write: the power died partway through the syscall.
                super().write(fh, data[: len(data) // 2])
            raise InjectedCrash(f"injected crash at op {self.ops - 1} (torn write)")
        super().write(fh, data)

    def fsync(self, fh) -> None:
        """Fsync, honouring the crash schedule."""
        if self._account("fsync", getattr(fh, "name", "?")):
            raise InjectedCrash(f"injected crash at op {self.ops - 1} (fsync)")
        super().fsync(fh)

    def fsync_dir(self, path: str | Path) -> None:
        """Directory fsync, counted as an ``fsync`` op."""
        if self._account("fsync", path):
            raise InjectedCrash(f"injected crash at op {self.ops - 1} (dir fsync)")
        super().fsync_dir(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomic rename, honouring the crash schedule."""
        if self._account("replace", dst):
            raise InjectedCrash(f"injected crash at op {self.ops - 1} (rename)")
        super().replace(src, dst)

    def unlink(self, path: str | Path) -> None:
        """Unlink, honouring the crash schedule."""
        if self._account("unlink", path):
            raise InjectedCrash(f"injected crash at op {self.ops - 1} (unlink)")
        super().unlink(path)


def with_retries(
    fn: Callable[[], _T],
    *,
    attempts: int = 4,
    base_delay: float = 0.001,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[], None] | None = None,
) -> _T:
    """Call ``fn``, retrying transient failures with exponential backoff.

    Retries up to ``attempts - 1`` times on ``retry_on`` exceptions (by
    default any :class:`OSError`), sleeping ``base_delay * 2**attempt``
    between tries, then re-raises the last failure.  ``on_retry`` is
    invoked before each retry (the storage layer counts them into its I/O
    statistics).  :class:`InjectedCrash` is a :class:`BaseException` and
    therefore never matches the default filter: crashes are not transient.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on:
            if attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry()
            sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover
