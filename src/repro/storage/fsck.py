"""Offline catalog verification and repair — the ``repro-fsck`` engine.

:func:`fsck_store` walks an engine storage directory (one subdirectory per
dataset, each owning a ``manifest.json`` catalog root) and cross-checks
three layers of evidence against each other:

1. **the manifest** — readable JSON, supported format, CRC32 stamp intact;
2. **the partition files it references** — present, a whole number of
   pages, page CRC32s matching the manifest's recorded checksums
   (format-3 stores), and heapfile record counts matching the counts the
   manifest committed (all formats — this is what catches a torn append
   on a checksum-less format-2 store);
3. **the directory contents** — generation-suffixed partition files and
   manifest staging files nothing references (the debris a crash between
   a manifest commit and the stale-file sweep leaves behind).

With ``repair=True`` the checker acts on what it found, always preferring
*loss of derived state* over *wrong answers*:

* orphaned partition/staging files are deleted;
* a corrupt **tree** partition (representatives, members, unclustered)
  resets the manifest's ``tree`` entry — the next query rebuilds the
  ReTraTree from the verified archive;
* a corrupt **delta** partition is quarantined and its batch removed from
  the manifest, with the data loss recorded in the manifest's
  ``degraded`` list (surfaced by ``artifact_status``/``EXPLAIN``);
* a corrupt **base archive** or unreadable manifest quarantines the whole
  dataset directory under ``<root>/_quarantine/`` — nothing trustworthy
  remains to serve.

Every repair that changes the manifest rewrites it atomically with fresh
``checksums``/``manifest_crc`` stamps, so a post-repair store verifies
clean.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.storage.buffer_pool import BufferPool
from repro.storage.catalog import (
    MANIFEST_FILENAME,
    manifest_checksum,
    page_checksums,
    staged_tmp_path,
)
from repro.storage.errors import StorageError
from repro.storage.faults import DEFAULT_IO, IOShim
from repro.storage.heapfile import HeapFile
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.pager import Pager

__all__ = ["FsckIssue", "FsckReport", "fsck_store", "QUARANTINE_DIRNAME"]

#: Directory (under the store root) corrupt files are moved into on repair.
QUARANTINE_DIRNAME = "_quarantine"

#: Manifest layouts this checker knows how to validate.
_KNOWN_FORMATS = (1, 2, 3, 4)


@dataclass
class FsckIssue:
    """One finding of the checker.

    Attributes
    ----------
    kind:
        Machine-readable issue class (``orphan_file``, ``stale_staging``,
        ``checksum_mismatch``, ``torn_partition``, ``missing_partition``,
        ``manifest_unreadable``, ``manifest_checksum``,
        ``manifest_unsupported``, ``uncommitted_directory``,
        ``unchecksummed``).
    path:
        The file or directory the issue concerns.
    detail:
        Human-readable description of what was found.
    severity:
        ``"error"`` (the store cannot be fully trusted), ``"warning"``
        (wasted space / debris, answers unaffected) or ``"info"``.
    repaired:
        Whether a ``repair=True`` run resolved it.
    action:
        What the repair did (empty when not repaired).
    """

    kind: str
    path: str
    detail: str
    severity: str = "error"
    repaired: bool = False
    action: str = ""

    def as_row(self) -> dict[str, object]:
        """The issue as one flat report row (CLI/JSON output)."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """Everything one :func:`fsck_store` run found (and possibly repaired)."""

    root: str | None
    datasets: list[str] = field(default_factory=list)
    issues: list[FsckIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[FsckIssue]:
        """The error-severity issues (repaired or not)."""
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def unrepaired_errors(self) -> list[FsckIssue]:
        """Error-severity issues a repair did not (or could not) resolve."""
        return [issue for issue in self.errors if not issue.repaired]

    @property
    def clean(self) -> bool:
        """Whether the store can be trusted: no unrepaired errors remain."""
        return not self.unrepaired_errors

    def add(
        self,
        kind: str,
        path: Path | str,
        detail: str,
        severity: str = "error",
    ) -> FsckIssue:
        """Record one finding and return it (for later repair annotation)."""
        issue = FsckIssue(kind=kind, path=str(path), detail=detail, severity=severity)
        self.issues.append(issue)
        return issue

    def as_rows(self) -> list[dict[str, object]]:
        """All issues as flat report rows."""
        return [issue.as_row() for issue in self.issues]

    def summary(self) -> str:
        """One-line outcome summary for CLI output."""
        n_err = len(self.errors)
        n_warn = sum(1 for i in self.issues if i.severity == "warning")
        repaired = sum(1 for i in self.issues if i.repaired)
        state = "clean" if self.clean else "NOT clean"
        return (
            f"{len(self.datasets)} dataset(s), {n_err} error(s), "
            f"{n_warn} warning(s), {repaired} repaired — store is {state}"
        )


class _BytesPager(Pager):
    """Read-only pager over an in-memory file image (fsck never writes)."""

    def __init__(self, data: bytes) -> None:
        self._data = data

    def num_pages(self) -> int:
        return len(self._data) // PAGE_SIZE

    def allocate_page(self) -> int:  # pragma: no cover - fsck is read-only
        raise StorageError("fsck pagers are read-only")

    def read_page(self, page_no: int) -> Page:
        start = page_no * PAGE_SIZE
        return Page(self._data[start : start + PAGE_SIZE])

    def write_page(self, page_no: int, page: Page) -> None:  # pragma: no cover
        raise StorageError("fsck pagers are read-only")


def _record_count(data: bytes) -> int:
    """Number of complete records in a partition file image.

    Raises ``ValueError``/``KeyError`` when the heapfile structure itself
    is undecodable (corrupt slots, broken continuation chains).
    """
    pool = BufferPool(_BytesPager(data), capacity=max(1, len(data) // PAGE_SIZE + 1))
    return sum(1 for _ in HeapFile(pool).scan_records())


def _as_int(value) -> int | None:
    """``int(value)`` when it cleanly coerces, else ``None``.

    Corruption can turn a recorded count or CRC into a string, null or
    object that still parses as JSON; fsck's job is to *diagnose* such a
    manifest, so every number it reads from one goes through here instead
    of a bare ``int(...)`` that would crash the scan with a traceback.
    """
    if isinstance(value, bool):
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def _tree_partition_expectations(tree: dict) -> list[tuple[str, object]]:
    """``(partition, recorded_count)`` for every tree partition.

    Counts are returned as recorded — possibly corrupt/non-numeric — and
    coerced (and reported) by the caller.
    """
    out: list[tuple[str, object]] = []
    reps = tree.get("reps_partition")
    if isinstance(reps, str):
        out.append((reps, tree.get("reps_count")))
    for sc in tree.get("subchunks") or []:
        if not isinstance(sc, dict):
            continue
        unclustered = sc.get("unclustered_partition")
        if isinstance(unclustered, str):
            out.append((unclustered, sc.get("unclustered_count")))
        for entry in sc.get("entries") or []:
            if isinstance(entry, dict) and isinstance(entry.get("partition"), str):
                out.append((entry["partition"], entry.get("member_count")))
    return out


def _partition_expectations(manifest: dict) -> list[tuple[str, object, str]]:
    """Every referenced partition as ``(name, recorded_count, role)``.

    ``role`` is ``"base"``, ``"delta:<i>"`` or ``"tree"`` — it decides the
    repair strategy when the partition turns out damaged.  Counts are the
    raw manifest values (possibly corrupt); the caller coerces via
    :func:`_as_int` and reports non-numeric ones.
    """
    out: list[tuple[str, object, str]] = []
    base = manifest.get("frame_partition")
    if isinstance(base, str):
        row_keys = manifest.get("row_keys")
        out.append((base, len(row_keys) if isinstance(row_keys, list) else None, "base"))
    for i, delta in enumerate(manifest.get("deltas") or []):
        if isinstance(delta, dict) and isinstance(delta.get("partition"), str):
            row_keys = delta.get("row_keys")
            out.append(
                (
                    delta["partition"],
                    len(row_keys) if isinstance(row_keys, list) else None,
                    f"delta:{i}",
                )
            )
    tree = manifest.get("tree")
    if isinstance(tree, dict):
        for name, count in _tree_partition_expectations(tree):
            out.append((name, count, "tree"))
    # A format-4 sharded deployment serialises one tree structure per shard
    # under ``shards.trees`` (mutually exclusive with ``tree``); every shard
    # partition carries the same repair policy as a single tree's.
    shards = manifest.get("shards")
    if isinstance(shards, dict):
        for shard_tree in shards.get("trees") or []:
            if isinstance(shard_tree, dict):
                for name, count in _tree_partition_expectations(shard_tree):
                    out.append((name, count, "tree"))
    return out


def _quarantine(root: Path, source: Path) -> Path:
    """Move a file or directory under ``<root>/_quarantine/``, never clobbering.

    The store-relative path is preserved: a dataset directory lands at
    ``_quarantine/<dataset>``, a partition file at
    ``_quarantine/<dataset>/<file>``.
    """
    relative = source.relative_to(root)
    target = root / QUARANTINE_DIRNAME / relative
    target_dir = target.parent
    target_dir.mkdir(parents=True, exist_ok=True)
    counter = 1
    while target.exists():
        target = target_dir / f"{source.name}.{counter}"
        counter += 1
    shutil.move(str(source), str(target))
    return target


def _write_manifest_atomic(io: IOShim, directory: Path, manifest: dict) -> None:
    """Atomically rewrite a dataset's manifest with a fresh CRC stamp."""
    manifest["manifest_crc"] = manifest_checksum(manifest)
    path = directory / MANIFEST_FILENAME
    tmp = staged_tmp_path(path)
    payload = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")
    fh = io.open(tmp, "wb")
    try:
        io.write(fh, payload)
        io.fsync(fh)
    finally:
        fh.close()
    io.replace(tmp, path)
    io.fsync_dir(directory)


def _check_dataset(
    root: Path, directory: Path, report: FsckReport, repair: bool, io: IOShim
) -> None:
    """Verify (and optionally repair) one dataset directory."""
    manifest_path = directory / MANIFEST_FILENAME
    debris = sorted(directory.glob("*.part")) + sorted(directory.glob("*.json.tmp"))

    if not manifest_path.exists():
        if debris:
            issue = report.add(
                "uncommitted_directory",
                directory,
                f"{len(debris)} partition/staging file(s) but no manifest "
                "(a crashed create or drop)",
                severity="warning",
            )
            if repair:
                for path in debris:
                    io.unlink(path)
                try:
                    directory.rmdir()
                except OSError:  # pragma: no cover - foreign files present
                    pass
                issue.repaired = True
                issue.action = "deleted uncommitted files"
        return

    # -- layer 1: the manifest itself -------------------------------------
    try:
        manifest = json.loads(io.read_bytes(manifest_path).decode("utf-8"))
        if not isinstance(manifest, dict):
            raise ValueError(f"top-level JSON is a {type(manifest).__name__}")
    except (ValueError, UnicodeDecodeError) as exc:
        issue = report.add(
            "manifest_unreadable", manifest_path, f"manifest is unreadable: {exc}"
        )
        if repair:
            target = _quarantine(root, directory)
            issue.repaired = True
            issue.action = f"dataset directory quarantined to {target}"
        return

    report.datasets.append(directory.name)
    if manifest.get("format_version") not in _KNOWN_FORMATS:
        report.add(
            "manifest_unsupported",
            manifest_path,
            f"manifest format {manifest.get('format_version')!r} is not one "
            f"of the supported versions {_KNOWN_FORMATS}",
        )
        return  # nothing else about this layout can be interpreted safely

    crc_issue: FsckIssue | None = None
    stored_crc = manifest.get("manifest_crc")
    if stored_crc is not None and stored_crc != manifest_checksum(manifest):
        crc_issue = report.add(
            "manifest_checksum",
            manifest_path,
            "manifest content does not match its manifest_crc stamp",
        )
    elif "checksums" not in manifest:
        report.add(
            "unchecksummed",
            manifest_path,
            "pre-checksum manifest (format < 3); page integrity cannot be "
            "verified until the next commit upgrades it",
            severity="info",
        )

    # -- layer 2: the referenced partitions --------------------------------
    checksums = manifest.get("checksums")
    checksums = checksums if isinstance(checksums, dict) else {}
    expectations = _partition_expectations(manifest)
    referenced = {name for name, _, _ in expectations}
    damaged_roles: dict[str, FsckIssue] = {}
    damaged_issues: list[tuple[str, FsckIssue]] = []

    def damage(issue: FsckIssue, role: str) -> None:
        damaged_roles.setdefault(role, issue)
        damaged_issues.append((role, issue))

    for name, recorded_count, role in expectations:
        path = directory / f"{name}.part"
        expected_count = _as_int(recorded_count)
        if recorded_count is not None and expected_count is None:
            # The manifest itself is type-corrupt here (a count that is a
            # string/null/object); without a trustworthy expectation the
            # partition cannot be pronounced healthy — mark the role
            # damaged so repair degrades it rather than trusting it.
            damage(
                report.add(
                    "checksum_mismatch",
                    manifest_path,
                    f"manifest records a non-numeric count {recorded_count!r} "
                    f"for partition {name!r} (manifest value corrupt)",
                ),
                role,
            )
            continue
        if not path.exists():
            damage(
                report.add(
                    "missing_partition",
                    path,
                    f"partition {name!r} is referenced by the manifest ({role}) "
                    "but its file is missing",
                ),
                role,
            )
            continue
        data = io.read_bytes(path)
        if len(data) % PAGE_SIZE != 0:
            damage(
                report.add(
                    "torn_partition",
                    path,
                    f"size {len(data)} is not a multiple of the page size "
                    "(torn tail)",
                ),
                role,
            )
            continue
        expected_crcs = checksums.get(name)
        if isinstance(expected_crcs, list):
            actual_crcs = page_checksums(data)
            coerced_crcs = [_as_int(want) for want in expected_crcs]
            bad_page = next(
                (
                    i
                    for i, (got, want) in enumerate(zip(actual_crcs, coerced_crcs))
                    if want is None or got != want
                ),
                None,
            )
            if len(actual_crcs) != len(expected_crcs) or bad_page is not None:
                if bad_page is not None and coerced_crcs[bad_page] is None:
                    where = (
                        f"page {bad_page}: recorded checksum "
                        f"{expected_crcs[bad_page]!r} is not numeric "
                        "(manifest value corrupt)"
                    )
                elif bad_page is not None:
                    where = f"page {bad_page} (offset {bad_page * PAGE_SIZE})"
                else:
                    where = f"page count {len(actual_crcs)} != {len(expected_crcs)}"
                damage(
                    report.add(
                        "checksum_mismatch",
                        path,
                        f"partition {name!r} fails its CRC32 check at {where}",
                    ),
                    role,
                )
                continue
        try:
            count = _record_count(data)
        except (ValueError, KeyError) as exc:
            damage(
                report.add(
                    "torn_partition", path, f"partition {name!r} is undecodable: {exc}"
                ),
                role,
            )
            continue
        if expected_count is not None and count != expected_count:
            damage(
                report.add(
                    "torn_partition",
                    path,
                    f"partition {name!r} holds {count} records but the "
                    f"manifest recorded {expected_count} (torn commit)",
                ),
                role,
            )

    # -- layer 3: directory debris -----------------------------------------
    orphan_issues: list[tuple[FsckIssue, Path]] = []
    for path in sorted(directory.glob("*.part")):
        if path.stem not in referenced:
            orphan_issues.append(
                (
                    report.add(
                        "orphan_file",
                        path,
                        "partition file is referenced by nothing (crash debris)",
                        severity="warning",
                    ),
                    path,
                )
            )
    for path in sorted(directory.glob("*.json.tmp")):
        orphan_issues.append(
            (
                report.add(
                    "stale_staging",
                    path,
                    "manifest staging file from an interrupted commit",
                    severity="warning",
                ),
                path,
            )
        )

    if not repair:
        return

    # -- repair -------------------------------------------------------------
    manifest_dirty = False

    base_issue = damaged_roles.get("base")
    if base_issue is not None:
        target = _quarantine(root, directory)
        for _role, issue in damaged_issues:
            issue.repaired = True
            issue.action = f"dataset directory quarantined to {target}"
        for issue, _ in orphan_issues:
            issue.repaired = True
            issue.action = "removed with the quarantined dataset"
        if crc_issue is not None:
            crc_issue.repaired = True
            crc_issue.action = f"dataset directory quarantined to {target}"
        return

    degraded = [d for d in manifest.get("degraded") or [] if isinstance(d, str)]
    delta_roles = sorted(
        (role for role in damaged_roles if role.startswith("delta:")),
        key=lambda role: int(role.split(":", 1)[1]),
        reverse=True,
    )
    for role in delta_roles:
        index = int(role.split(":", 1)[1])
        deltas = list(manifest.get("deltas") or [])
        dropped = deltas.pop(index)
        manifest["deltas"] = deltas
        issue = damaged_roles[role]
        name = dropped.get("partition")
        part_path = directory / f"{name}.part"
        action = f"append batch {index} dropped from the manifest"
        if part_path.exists():
            target = _quarantine(root, part_path)
            action += f"; file quarantined to {target}"
        degraded.append(
            f"append batch {index} (partition {name!r}) was corrupt and has "
            "been removed; its trajectories are lost"
        )
        issue.repaired = True
        issue.action = action
        # Losing a delta invalidates any tree serialised over it.
        if manifest.get("tree") is not None or manifest.get("shards") is not None:
            damaged_roles.setdefault("tree", issue)
        manifest_dirty = True

    if "tree" in damaged_roles and (
        manifest.get("tree") is not None or manifest.get("shards") is not None
    ):
        # Reset every serialised tree structure — the single ``tree``
        # section or the per-shard trees of a ``shards`` section (they are
        # mutually exclusive, but a damaged manifest carrying both is
        # reset in full): one shard's corruption invalidates the sharded
        # facade as a whole, and the rebuild restores whichever layout the
        # next query asks for.
        damaged_trees = []
        if isinstance(manifest.get("tree"), dict):
            damaged_trees.append(manifest["tree"])
        if isinstance(manifest.get("shards"), dict):
            damaged_trees.extend(
                tm
                for tm in manifest["shards"].get("trees") or []
                if isinstance(tm, dict)
            )
        manifest["tree"] = None
        manifest["shards"] = None
        removed = []
        for tree in damaged_trees:
            for name, _count in _tree_partition_expectations(tree):
                part_path = directory / f"{name}.part"
                if part_path.exists():
                    io.unlink(part_path)
                    removed.append(name)
        action = (
            "tree entry reset (next query rebuilds from the verified "
            f"archive); {len(removed)} tree partition file(s) removed"
        )
        for role, issue in damaged_issues:
            if role == "tree" and not issue.repaired:
                issue.repaired = True
                issue.action = action
        manifest_dirty = True
    # Tree-role issues on an already-reset tree ride on that reset.
    for role, issue in damaged_issues:
        if (
            role == "tree"
            and not issue.repaired
            and manifest.get("tree") is None
            and manifest.get("shards") is None
        ):
            issue.repaired = True
            issue.action = "tree entry reset; next query rebuilds"

    if degraded != (manifest.get("degraded") or []):
        manifest["degraded"] = degraded
        manifest_dirty = True

    for issue, path in orphan_issues:
        if path.exists():
            io.unlink(path)
        issue.repaired = True
        issue.action = "deleted"

    if manifest_dirty or crc_issue is not None:
        # Recompute the checksum map for what the manifest now references
        # (dropping entries for removed partitions, keeping trusted ones).
        if isinstance(manifest.get("checksums"), dict):
            still = {name for name, _, _ in _partition_expectations(manifest)}
            manifest["checksums"] = {
                name: crcs
                for name, crcs in manifest["checksums"].items()
                if name in still
            }
        _write_manifest_atomic(io, directory, manifest)
        if crc_issue is not None and not crc_issue.repaired:
            crc_issue.repaired = True
            crc_issue.action = (
                "manifest re-stamped (content verified against partition "
                "checksums and record counts)"
            )


def fsck_store(
    root: str | Path, repair: bool = False, io: IOShim | None = None
) -> FsckReport:
    """Check (and with ``repair=True`` fix) an engine storage directory.

    Parameters
    ----------
    root:
        The engine's storage directory — the one holding one subdirectory
        per dataset (what ``HermesEngine.on_disk(root)`` opens).
    repair:
        When ``True``, act on the findings: delete orphans, quarantine
        corrupt files under ``<root>/_quarantine/``, degrade datasets in
        their manifests (see the module docstring for the full policy).
    io:
        Optional :class:`~repro.storage.faults.IOShim` for fault-injection
        tests.

    Returns
    -------
    An :class:`FsckReport`; ``report.clean`` is the exit-code criterion
    (``True`` iff no unrepaired errors remain).
    """
    io = io if io is not None else DEFAULT_IO
    root = Path(root)
    report = FsckReport(root=str(root))
    if not root.exists():
        return report
    for sub in sorted(p for p in root.iterdir() if p.is_dir()):
        if sub.name == QUARANTINE_DIRNAME:
            continue
        _check_dataset(root, sub, report, repair, io)
    return report
