"""Page stores.

A pager owns an ordered collection of fixed-size pages and knows how to read
and write them by page number.  Two implementations are provided:

* :class:`FilePager` -- pages live in a single file on disk (one partition
  file per ReTraTree partition, mirroring the paper's disk-based partitions),
* :class:`InMemoryPager` -- pages live in a list; used for tests and for the
  purely in-memory engine configuration.

A :class:`FilePager` performs all of its OS calls through an
:class:`~repro.storage.faults.IOShim` (transparent by default; tests pass a
:class:`~repro.storage.faults.FaultInjector`), and wraps every physical
read, write and fsync in a bounded retry with backoff so *transient* I/O
errors — the kind a loaded NFS mount or a USB hiccup produces — do not
fail a query or a checkpoint that a second attempt would have served.
Retries performed are counted in :attr:`FilePager.io_retries`.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path as FsPath

from repro.storage.errors import CorruptPartitionError
from repro.storage.faults import DEFAULT_IO, IOShim, with_retries
from repro.storage.page import PAGE_SIZE, Page

__all__ = ["Pager", "FilePager", "InMemoryPager"]


class Pager(ABC):
    """Abstract page store."""

    @abstractmethod
    def num_pages(self) -> int:
        """Number of pages currently allocated."""

    @abstractmethod
    def allocate_page(self) -> int:
        """Append a fresh page and return its page number."""

    @abstractmethod
    def read_page(self, page_no: int) -> Page:
        """Read the page with the given number."""

    @abstractmethod
    def write_page(self, page_no: int, page: Page) -> None:
        """Persist the page image under the given number."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def flush(self) -> None:
        """Push buffered writes to the backing store (no-op by default)."""

    def sync(self) -> None:
        """Force buffered writes to *stable storage* (defaults to flush)."""
        self.flush()


class InMemoryPager(Pager):
    """Pages held in a Python list — no durability, maximal speed."""

    def __init__(self) -> None:
        self._pages: list[bytearray] = []

    def num_pages(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        self._pages.append(bytearray(Page().to_bytes()))
        return len(self._pages) - 1

    def read_page(self, page_no: int) -> Page:
        return Page(bytes(self._pages[page_no]))

    def write_page(self, page_no: int, page: Page) -> None:
        if not (0 <= page_no < len(self._pages)):
            raise IndexError(f"page {page_no} not allocated")
        self._pages[page_no] = bytearray(page.to_bytes())


class FilePager(Pager):
    """Pages stored back-to-back in a single binary file.

    The file is opened unbuffered through the I/O shim, so every page
    write issued here is a real syscall — which is what makes the fault
    injector's crash simulation (and the engine's checkpoint ordering
    argument) faithful.
    """

    def __init__(self, path: str | FsPath, io: IOShim | None = None) -> None:
        self.path = FsPath(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._io = io if io is not None else DEFAULT_IO
        #: Transient I/O failures absorbed by retries since opening.
        self.io_retries = 0
        # Open for read/write, creating the file if needed.
        mode = "r+b" if self.path.exists() else "w+b"
        self._file = self._io.open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            self._file.close()
            raise CorruptPartitionError(
                f"{self.path} has size {size}, not a multiple of the page size "
                "— the file tail is torn",
                path=self.path,
                offset=size - (size % PAGE_SIZE),
            )
        self._num_pages = size // PAGE_SIZE

    def _retry(self, fn):
        """Run one physical I/O op with bounded retry, counting retries."""

        def note() -> None:
            self.io_retries += 1

        return with_retries(fn, on_retry=note)

    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        page_no = self._num_pages

        def write_fresh() -> None:
            self._file.seek(page_no * PAGE_SIZE)
            self._io.write(self._file, Page().to_bytes())

        self._retry(write_fresh)
        self._num_pages += 1
        return page_no

    def read_page(self, page_no: int) -> Page:
        if not (0 <= page_no < self._num_pages):
            raise IndexError(f"page {page_no} not allocated in {self.path}")

        def read() -> bytes:
            self._file.seek(page_no * PAGE_SIZE)
            return self._io.read(self._file, PAGE_SIZE)

        data = self._retry(read)
        if len(data) != PAGE_SIZE:
            raise CorruptPartitionError(
                f"{self.path} page {page_no} is truncated "
                f"({len(data)} of {PAGE_SIZE} bytes)",
                path=self.path,
                offset=page_no * PAGE_SIZE,
            )
        return Page(data)

    def write_page(self, page_no: int, page: Page) -> None:
        if not (0 <= page_no < self._num_pages):
            raise IndexError(f"page {page_no} not allocated in {self.path}")

        def write() -> None:
            self._file.seek(page_no * PAGE_SIZE)
            self._io.write(self._file, page.to_bytes())

        self._retry(write)

    def flush(self) -> None:
        """Flush Python-level buffers so other handles see the pages.

        The file is opened unbuffered, so this is effectively a no-op kept
        for the :class:`Pager` contract.
        """
        if not self._file.closed:
            self._file.flush()

    def sync(self) -> None:
        """Flush and fsync the underlying file (with transient-error retry)."""
        if not self._file.closed:
            self._file.flush()
            self._retry(lambda: self._io.fsync(self._file))

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
