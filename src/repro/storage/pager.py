"""Page stores.

A pager owns an ordered collection of fixed-size pages and knows how to read
and write them by page number.  Two implementations are provided:

* :class:`FilePager` -- pages live in a single file on disk (one partition
  file per ReTraTree partition, mirroring the paper's disk-based partitions),
* :class:`InMemoryPager` -- pages live in a list; used for tests and for the
  purely in-memory engine configuration.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path as FsPath

from repro.storage.page import PAGE_SIZE, Page

__all__ = ["Pager", "FilePager", "InMemoryPager"]


class Pager(ABC):
    """Abstract page store."""

    @abstractmethod
    def num_pages(self) -> int:
        """Number of pages currently allocated."""

    @abstractmethod
    def allocate_page(self) -> int:
        """Append a fresh page and return its page number."""

    @abstractmethod
    def read_page(self, page_no: int) -> Page:
        """Read the page with the given number."""

    @abstractmethod
    def write_page(self, page_no: int, page: Page) -> None:
        """Persist the page image under the given number."""

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def flush(self) -> None:
        """Push buffered writes to the backing store (no-op by default)."""

    def sync(self) -> None:
        """Force buffered writes to *stable storage* (defaults to flush)."""
        self.flush()


class InMemoryPager(Pager):
    """Pages held in a Python list — no durability, maximal speed."""

    def __init__(self) -> None:
        self._pages: list[bytearray] = []

    def num_pages(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        self._pages.append(bytearray(Page().to_bytes()))
        return len(self._pages) - 1

    def read_page(self, page_no: int) -> Page:
        return Page(bytes(self._pages[page_no]))

    def write_page(self, page_no: int, page: Page) -> None:
        if not (0 <= page_no < len(self._pages)):
            raise IndexError(f"page {page_no} not allocated")
        self._pages[page_no] = bytearray(page.to_bytes())


class FilePager(Pager):
    """Pages stored back-to-back in a single binary file."""

    def __init__(self, path: str | FsPath) -> None:
        self.path = FsPath(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Open for read/write, creating the file if needed.
        mode = "r+b" if self.path.exists() else "w+b"
        self._file = open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            raise ValueError(
                f"{self.path} has size {size}, not a multiple of the page size"
            )
        self._num_pages = size // PAGE_SIZE

    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        page_no = self._num_pages
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(Page().to_bytes())
        self._num_pages += 1
        return page_no

    def read_page(self, page_no: int) -> Page:
        if not (0 <= page_no < self._num_pages):
            raise IndexError(f"page {page_no} not allocated in {self.path}")
        self._file.seek(page_no * PAGE_SIZE)
        return Page(self._file.read(PAGE_SIZE))

    def write_page(self, page_no: int, page: Page) -> None:
        if not (0 <= page_no < self._num_pages):
            raise IndexError(f"page {page_no} not allocated in {self.path}")
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(page.to_bytes())

    def flush(self) -> None:
        """Flush Python-level buffers so other handles see the pages."""
        if not self._file.closed:
            self._file.flush()

    def sync(self) -> None:
        """Flush and fsync the underlying file."""
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
