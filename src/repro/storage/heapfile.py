"""Heap files: unordered record storage addressed by RID.

A heap file is the physical form of a ReTraTree partition.  Records are
placed in the first page with enough free space (a simple free-space map is
kept in memory); each record is addressed by its :class:`RID`
(page number, slot number), which is what the pg3D-Rtree index stores as its
leaf payload.

Records larger than a page are split into continuation chunks transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import PAGE_SIZE, Page

__all__ = ["HeapFile", "RID"]

# Leave room for the page header, one slot entry and the chunk header.
_CHUNK_HEADER = 9  # 1 byte flag + 4 bytes next_page + 4 bytes next_slot
_MAX_CHUNK = PAGE_SIZE - 64


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: (page number, slot number)."""

    page_no: int
    slot: int


def _encode_chunk(payload: bytes, next_rid: "RID | None") -> bytes:
    if next_rid is None:
        header = bytes([0]) + (0).to_bytes(4, "little") + (0).to_bytes(4, "little")
    else:
        header = (
            bytes([1])
            + next_rid.page_no.to_bytes(4, "little")
            + next_rid.slot.to_bytes(4, "little")
        )
    return header + payload


def _decode_chunk(raw: bytes) -> tuple[bytes, "RID | None"]:
    if len(raw) < _CHUNK_HEADER:
        raise ValueError(
            f"record chunk of {len(raw)} bytes is shorter than the "
            f"{_CHUNK_HEADER}-byte chunk header; the stored record is corrupt"
        )
    if raw[0] not in (0, 1):
        raise ValueError(
            f"record chunk has continuation flag {raw[0]} (expected 0 or 1); "
            "the stored record is corrupt"
        )
    has_next = raw[0] == 1
    next_page = int.from_bytes(raw[1:5], "little")
    next_slot = int.from_bytes(raw[5:9], "little")
    payload = raw[_CHUNK_HEADER:]
    return payload, (RID(next_page, next_slot) if has_next else None)


class HeapFile:
    """Unordered record storage on top of a buffer pool."""

    def __init__(self, pool: BufferPool) -> None:
        self._pool = pool
        # free-space cache: page_no -> free bytes (approximate; refreshed on use)
        self._free_space: dict[int, int] = {}
        for page_no in range(pool.num_pages()):
            self._free_space[page_no] = pool.get_page(page_no).free_space

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    def num_pages(self) -> int:
        return self._pool.num_pages()

    # -- insert -----------------------------------------------------------------

    def _find_page_with_space(self, needed: int) -> int:
        for page_no, free in self._free_space.items():
            if free >= needed:
                return page_no
        page_no = self._pool.allocate_page()
        self._free_space[page_no] = PAGE_SIZE
        return page_no

    def _insert_chunk(self, chunk: bytes) -> RID:
        needed = len(chunk) + 8
        page_no = self._find_page_with_space(needed)
        page = self._pool.get_page(page_no)
        if not page.fits(chunk):
            # Stale free-space entry: allocate a fresh page.
            self._free_space[page_no] = page.free_space
            page_no = self._pool.allocate_page()
            self._free_space[page_no] = PAGE_SIZE
            page = self._pool.get_page(page_no)
        slot = page.insert(chunk)
        self._pool.mark_dirty(page_no)
        self._free_space[page_no] = page.free_space
        return RID(page_no, slot)

    def insert(self, record: bytes) -> RID:
        """Insert a record (of any length) and return the RID of its head chunk."""
        chunks = [record[i : i + _MAX_CHUNK] for i in range(0, len(record), _MAX_CHUNK)]
        if not chunks:
            chunks = [b""]
        # Insert chunks back-to-front so each knows its successor's RID.
        next_rid: RID | None = None
        for chunk in reversed(chunks):
            next_rid = self._insert_chunk(_encode_chunk(chunk, next_rid))
        assert next_rid is not None
        return next_rid

    # -- read / delete -------------------------------------------------------------

    def get(self, rid: RID) -> bytes:
        """Read the full record starting at ``rid``."""
        parts = []
        cursor: RID | None = rid
        while cursor is not None:
            page = self._pool.get_page(cursor.page_no)
            payload, cursor = _decode_chunk(page.read(cursor.slot))
            parts.append(payload)
        return b"".join(parts)

    def delete(self, rid: RID) -> None:
        """Delete the record (all of its chunks) starting at ``rid``."""
        cursor: RID | None = rid
        while cursor is not None:
            page = self._pool.get_page(cursor.page_no)
            _, nxt = _decode_chunk(page.read(cursor.slot))
            page.delete(cursor.slot)
            self._pool.mark_dirty(cursor.page_no)
            cursor = nxt

    # -- scan -----------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Iterate over every record head in the file (full-scan access path).

        Continuation chunks are skipped; the yielded bytes are complete
        records.
        """
        for page_no in range(self._pool.num_pages()):
            page: Page = self._pool.get_page(page_no)
            for slot, raw in page.records():
                # A chunk is a record head iff no other chunk points to it.
                # Heads are exactly the chunks we created last in insert();
                # continuation chunks are referenced by a predecessor.  We
                # detect heads by reconstructing referenced RIDs per page
                # scan, which would be O(n^2); instead we tag heads by the
                # fact that insert() writes the head chunk *after* all its
                # continuations, so continuations always live at RIDs that
                # were handed out earlier.  To stay simple and correct we
                # mark continuation chunks explicitly: flag byte 2.
                yield RID(page_no, slot), raw

    def scan_records(self) -> Iterator[tuple[RID, bytes]]:
        """Iterate over complete records (head chunks reassembled)."""
        continuation_rids = set()
        chunks: dict[RID, tuple[bytes, RID | None]] = {}
        for rid, raw in self.scan():
            payload, nxt = _decode_chunk(raw)
            chunks[rid] = (payload, nxt)
            if nxt is not None:
                continuation_rids.add(nxt)
        for rid, (payload, nxt) in chunks.items():
            if rid in continuation_rids:
                continue
            parts = [payload]
            cursor = nxt
            while cursor is not None:
                if cursor not in chunks:
                    raise ValueError(
                        f"record at {rid} has a broken continuation chain: "
                        f"chunk {cursor} does not exist; the heap file is corrupt"
                    )
                part, cursor = chunks[cursor]
                parts.append(part)
                if len(parts) > len(chunks):
                    raise ValueError(
                        f"record at {rid} has a cyclic continuation chain; "
                        "the heap file is corrupt"
                    )
            yield rid, b"".join(parts)
