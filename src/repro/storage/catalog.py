"""Partition catalog.

The :class:`StorageManager` creates and tracks named partitions — each one a
heap file backed either by a file on disk or by memory.  ReTraTree cluster
entries and the outlier set each own a partition, mirroring the
"pg3D-Rtree-k" partitions of the paper's Figure 2.

Alongside the partitions, a directory-backed manager owns one **manifest**
(``manifest.json``): a JSON document describing everything the engine needs
to reopen the directory cold — which partition archives the dataset's
trajectories and, once a ReTraTree has been built, the serialised tree
structure (see :meth:`repro.qut.retratree.ReTraTree.to_manifest`).  The
manifest is the catalog's durable root: recovery starts by reading it, and
:meth:`StorageManager.destroy` deletes it together with the partition files
so a dropped dataset reclaims its disk space.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable
from typing import Any, TypeVar

from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import (
    CorruptManifestError,
    CorruptPartitionError,
    partition_generation,
)
from repro.storage.faults import DEFAULT_IO, IOShim, with_retries
from repro.storage.heapfile import HeapFile
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import FilePager, InMemoryPager

__all__ = [
    "StorageManager",
    "PartitionInfo",
    "MANIFEST_FILENAME",
    "manifest_checksum",
    "page_checksums",
    "staged_tmp_path",
]

MANIFEST_FILENAME = "manifest.json"

#: A parsed ``manifest.json`` document.  Values are heterogeneous JSON
#: (strings, ints, nested objects), so the alias is honest about ``Any``.
Manifest = dict[str, Any]

_T = TypeVar("_T")


def staged_tmp_path(path: Path) -> Path:
    """The staging-file path for an atomic replace of ``path``.

    Every stage→fsync→replace commit in the storage layer (the catalog's
    manifest write, fsck's manifest repair) stages through this one
    naming scheme — ``<name>.json.tmp`` next to the target — so crash
    recovery and the orphan sweep recognise leftover staging files by a
    single pattern, and the io-discipline checker (repro-lint REPRO101)
    has one blessed tmp-path construction to point at.
    """
    return path.with_suffix(path.suffix + ".tmp")


def manifest_checksum(manifest: Manifest) -> int:
    """CRC32 over a manifest's canonical JSON, excluding ``manifest_crc``.

    The canonical form (sorted keys, no whitespace) makes the checksum a
    function of the manifest's *content*, not its on-disk formatting; the
    stored ``manifest_crc`` key itself is excluded so the stamp can live
    inside the document it protects.
    """
    payload = json.dumps(
        {k: v for k, v in manifest.items() if k != "manifest_crc"},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return zlib.crc32(payload)


def page_checksums(data: bytes) -> list[int]:
    """Per-page CRC32s of a partition file image.

    Raises :class:`CorruptPartitionError` when the image is not a whole
    number of pages (a torn tail cannot be checksummed page-by-page).
    """
    if len(data) % PAGE_SIZE != 0:
        raise CorruptPartitionError(
            f"partition image of {len(data)} bytes is not a whole number of "
            f"{PAGE_SIZE}-byte pages",
            offset=len(data) - (len(data) % PAGE_SIZE),
        )
    return [
        zlib.crc32(data[i : i + PAGE_SIZE]) for i in range(0, len(data), PAGE_SIZE)
    ]


@dataclass
class PartitionInfo:
    """Catalog entry for one partition."""

    name: str
    heapfile: HeapFile
    on_disk: bool
    path: Path | None = None
    record_count: int = 0


class StorageManager:
    """Creates, opens and drops named partitions.

    Parameters
    ----------
    directory:
        Directory for partition files.  ``None`` keeps every partition in
        memory (the default for tests and small analyses).
    buffer_pool_pages:
        Buffer pool capacity per partition, in pages.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        buffer_pool_pages: int = 64,
        io: IOShim | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.io = io if io is not None else DEFAULT_IO
        #: Transient I/O failures absorbed on manifest/unlink paths.
        self.io_retries = 0
        self._buffer_pool_pages = buffer_pool_pages
        self._partitions: dict[str, PartitionInfo] = {}
        # Per-page CRC32s the committed manifest recorded per partition;
        # consumed (verified, then discarded) on the first open of each
        # partition file — see get_or_create / set_expected_checksums.
        self._expected_checksums: dict[str, list[int]] = {}
        # Manifest of an in-memory manager (a directory-backed one reads and
        # writes manifest.json instead, so state survives the process).
        self._memory_manifest: Manifest | None = None

    def _retry(self, fn: Callable[[], _T]) -> _T:
        """Bounded-retry wrapper for this manager's own I/O calls."""

        def note() -> None:
            self.io_retries += 1

        return with_retries(fn, on_retry=note)

    # -- lifecycle ---------------------------------------------------------------

    def create_partition(self, name: str) -> PartitionInfo:
        """Create a new named partition; raises if the name already exists."""
        if name in self._partitions:
            raise ValueError(f"partition {name!r} already exists")
        if self.directory is not None:
            path = self.directory / f"{name}.part"
            pager = FilePager(path, io=self.io)
            on_disk = True
        else:
            path = None
            pager = InMemoryPager()
            on_disk = False
        pool = BufferPool(pager, capacity=self._buffer_pool_pages)
        info = PartitionInfo(name=name, heapfile=HeapFile(pool), on_disk=on_disk, path=path)
        self._partitions[name] = info
        return info

    def get_or_create(self, name: str) -> PartitionInfo:
        """Return the named partition, creating it on first use.

        When the committed manifest recorded page checksums for ``name``
        (see :meth:`set_expected_checksums`), the existing partition file
        is verified against them once — on this first open — and a
        mismatch raises :class:`CorruptPartitionError` *before* any record
        is decoded, so corrupt bytes never reach a query answer.  Warm
        paths (partition already open) pay nothing.
        """
        if name in self._partitions:
            return self._partitions[name]
        if name in self._expected_checksums:
            self._verify_partition(name)
        return self.create_partition(name)

    def set_expected_checksums(self, checksums: Manifest | None) -> None:
        """Register the manifest's per-partition page checksums for recovery.

        ``checksums`` maps partition name to a list of per-page CRC32s (the
        ``checksums`` key of a format-3 manifest).  Each entry is verified
        lazily on the partition's first open and then dropped; partitions
        without an entry (format-2 stores) open unverified.
        """
        self._expected_checksums = {
            name: [int(c) for c in crcs]
            for name, crcs in (checksums or {}).items()
            if isinstance(name, str) and isinstance(crcs, list)
        }

    def _verify_partition(self, name: str) -> None:
        """Check a partition file against its recorded page checksums.

        The expectation entry is dropped only after verification succeeds:
        a failing open leaves it in place so every retry re-verifies and
        raises the same diagnostic — a corrupt partition never gets a
        second, unverified chance to decode into a query answer.
        """
        expected = self._expected_checksums[name]
        if self.directory is None:
            self._expected_checksums.pop(name, None)
            return
        path = self.directory / f"{name}.part"
        if not path.exists():
            # Absent file: let the caller's record-count checks report the
            # missing records (an empty partition is created in its place).
            self._expected_checksums.pop(name, None)
            return
        data = self._retry(lambda: self.io.read_bytes(path))
        if len(data) % PAGE_SIZE != 0:
            raise CorruptPartitionError(
                f"partition {name!r} has size {len(data)}, not a multiple of "
                "the page size — the file tail is torn",
                path=path,
                offset=len(data) - (len(data) % PAGE_SIZE),
            )
        actual = page_checksums(data)
        if len(actual) != len(expected):
            raise CorruptPartitionError(
                f"partition {name!r} holds {len(actual)} pages but the "
                f"manifest recorded {len(expected)}",
                path=path,
                offset=min(len(actual), len(expected)) * PAGE_SIZE,
            )
        for page_no, (got, want) in enumerate(zip(actual, expected)):
            if got != want:
                raise CorruptPartitionError(
                    f"partition {name!r} page {page_no} fails its CRC32 check "
                    f"(stored {want}, computed {got})",
                    path=path,
                    offset=page_no * PAGE_SIZE,
                    generation=partition_generation(name),
                )
        self._expected_checksums.pop(name, None)

    def get(self, name: str) -> PartitionInfo:
        """Return the named partition; raises :class:`KeyError` if absent."""
        return self._partitions[name]

    def has(self, name: str) -> bool:
        """Whether the named partition is currently open in this catalog."""
        return name in self._partitions

    def drop_partition(self, name: str) -> None:
        """Drop a partition and delete its file, if any."""
        info = self._partitions.pop(name)
        self._expected_checksums.pop(name, None)
        info.heapfile.buffer_pool.close()
        if info.path is not None and info.path.exists():
            self._retry(lambda: self.io.unlink(info.path))

    def unlink_path(self, path: Path) -> None:
        """Delete a file through the manager's I/O shim (with retry).

        The engine's stale-file sweeps go through here so fault injection
        sees (and can crash on) every unlink in the commit protocol.
        """
        if path.exists():
            self._retry(lambda: self.io.unlink(path))

    def partitions(self) -> list[PartitionInfo]:
        """All catalog entries."""
        return list(self._partitions.values())

    def close(self) -> None:
        """Flush and close every partition."""
        for info in self._partitions.values():
            info.heapfile.buffer_pool.close()

    def checkpoint(self) -> None:
        """Flush and fsync every partition's dirty pages, without closing.

        Called at the engine's persistence points (dataset archival, tree
        serialisation) *before* the manifest commit, so the manifest never
        references records that could be lost to a process or system crash.
        """
        for info in self._partitions.values():
            info.heapfile.buffer_pool.sync()

    def destroy(self) -> None:
        """Close everything and reclaim the on-disk footprint.

        Deletes every partition file in the directory — including ``.part``
        files left behind by earlier processes that this manager never
        opened — plus the manifest, then removes the directory if it is
        empty.  This is what makes ``engine.drop`` actually release disk
        space instead of leaving stale heapfiles for a future same-named
        dataset to trip over.
        """
        self.close()
        self._partitions.clear()
        self._memory_manifest = None
        if self.directory is None or not self.directory.exists():
            return
        # The manifest goes FIRST — it is the drop's commit point.  A crash
        # right after leaves only orphan .part files (never a manifest
        # referencing deleted heapfiles), and a cold process that sees no
        # manifest treats the directory as not catalogued.
        manifest = self.directory / MANIFEST_FILENAME
        self.unlink_path(manifest)
        for path in self.directory.glob("*.part"):
            self.unlink_path(path)
        # A crash inside write_manifest can strand the staging file.
        for path in self.directory.glob("*.json.tmp"):
            self.unlink_path(path)
        try:
            self.directory.rmdir()
        except OSError:  # pragma: no cover - foreign files left by the user
            pass

    # -- manifest ---------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path | None:
        """Location of the manifest file (``None`` for in-memory managers)."""
        if self.directory is None:
            return None
        return self.directory / MANIFEST_FILENAME

    def write_manifest(self, manifest: Manifest) -> None:
        """Persist the catalog manifest atomically and durably.

        The temp file is fsynced before the rename and the directory entry
        after it, so a system crash leaves either the previous manifest or
        the complete new one — this write is the engine's commit point.
        """
        path = self.manifest_path
        if path is None:
            self._memory_manifest = manifest
            return
        tmp = staged_tmp_path(path)
        payload = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")

        def stage() -> None:
            fh = self.io.open(tmp, "wb")
            try:
                self.io.write(fh, payload)
                self.io.fsync(fh)
            finally:
                fh.close()

        self._retry(stage)
        self._retry(lambda: self.io.replace(tmp, path))
        # Make the rename itself durable (no-op on platforms without
        # directory fds — the rename stays atomic, just not crash-ordered,
        # which is the best available there).
        self.io.fsync_dir(path.parent)

    def read_manifest(self, verify: bool = True) -> Manifest | None:
        """The stored manifest, or ``None`` when nothing was persisted.

        Raises :class:`CorruptManifestError` when the file exists but is
        not a JSON object, or — with ``verify=True`` — when it carries a
        ``manifest_crc`` stamp that does not match its content.  Manifests
        without a stamp (formats 1 and 2) are returned unverified.
        """
        path = self.manifest_path
        if path is None:
            return self._memory_manifest
        if not path.exists():
            return None
        raw = self._retry(lambda: self.io.read_bytes(path))
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptManifestError(
                f"manifest is not readable JSON: {exc}", path=path
            ) from exc
        if not isinstance(manifest, dict):
            raise CorruptManifestError(
                f"manifest holds a {type(manifest).__name__}, not an object",
                path=path,
            )
        if verify and not self.manifest_crc_ok(manifest):
            raise CorruptManifestError(
                "manifest fails its CRC32 integrity check (the file was "
                "modified or damaged after its commit)",
                path=path,
            )
        return manifest

    @staticmethod
    def manifest_crc_ok(manifest: Manifest) -> bool:
        """Whether a manifest's content matches its ``manifest_crc`` stamp.

        Manifests without a stamp (written before format 3) trivially
        pass — there is nothing to verify against.
        """
        stored = manifest.get("manifest_crc")
        if stored is None:
            return True
        return stored == manifest_checksum(manifest)

    def partition_checksums(self, names: Iterable[str]) -> dict[str, list[int]]:
        """Per-page CRC32s of the named partitions' files, freshly computed.

        Call after :meth:`checkpoint` — the checksums describe what is on
        disk, and the manifest that records them must never be committed
        over unflushed pages.  Names without an on-disk file (in-memory
        managers, never-created partitions) are skipped.
        """
        sums: dict[str, list[int]] = {}
        if self.directory is None:
            return sums
        for name in names:
            path = self.directory / f"{name}.part"
            if not path.exists():
                continue
            data = self._retry(lambda p=path: self.io.read_bytes(p))
            sums[name] = page_checksums(data)
        return sums

    # -- aggregate statistics -------------------------------------------------------

    def total_pages(self) -> int:
        """Total allocated pages across partitions."""
        return sum(info.heapfile.num_pages() for info in self._partitions.values())

    def total_records(self) -> int:
        """Total record count as tracked by callers (see ``record_count``)."""
        return sum(info.record_count for info in self._partitions.values())

    def io_stats(self) -> dict[str, int]:
        """Aggregate physical/logical I/O counters across partitions.

        ``io_retries`` counts transient I/O failures absorbed by the
        bounded-retry paths (page reads/writes, fsyncs, manifest staging)
        — a rising value flags a flaky disk before it becomes an outage.
        """
        totals = {
            "hits": 0,
            "misses": 0,
            "pages_read": 0,
            "pages_written": 0,
            "io_retries": self.io_retries,
        }
        for info in self._partitions.values():
            stats = info.heapfile.buffer_pool.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["pages_read"] += stats.pages_read
            totals["pages_written"] += stats.pages_written
            totals["io_retries"] += info.heapfile.buffer_pool.io_retries
        return totals
