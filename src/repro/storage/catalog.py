"""Partition catalog.

The :class:`StorageManager` creates and tracks named partitions — each one a
heap file backed either by a file on disk or by memory.  ReTraTree cluster
entries and the outlier set each own a partition, mirroring the
"pg3D-Rtree-k" partitions of the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.storage.buffer_pool import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.pager import FilePager, InMemoryPager

__all__ = ["StorageManager", "PartitionInfo"]


@dataclass
class PartitionInfo:
    """Catalog entry for one partition."""

    name: str
    heapfile: HeapFile
    on_disk: bool
    path: Path | None = None
    record_count: int = 0


class StorageManager:
    """Creates, opens and drops named partitions.

    Parameters
    ----------
    directory:
        Directory for partition files.  ``None`` keeps every partition in
        memory (the default for tests and small analyses).
    buffer_pool_pages:
        Buffer pool capacity per partition, in pages.
    """

    def __init__(
        self, directory: str | Path | None = None, buffer_pool_pages: int = 64
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._buffer_pool_pages = buffer_pool_pages
        self._partitions: dict[str, PartitionInfo] = {}

    # -- lifecycle ---------------------------------------------------------------

    def create_partition(self, name: str) -> PartitionInfo:
        """Create a new named partition; raises if the name already exists."""
        if name in self._partitions:
            raise ValueError(f"partition {name!r} already exists")
        if self.directory is not None:
            path = self.directory / f"{name}.part"
            pager = FilePager(path)
            on_disk = True
        else:
            path = None
            pager = InMemoryPager()
            on_disk = False
        pool = BufferPool(pager, capacity=self._buffer_pool_pages)
        info = PartitionInfo(name=name, heapfile=HeapFile(pool), on_disk=on_disk, path=path)
        self._partitions[name] = info
        return info

    def get_or_create(self, name: str) -> PartitionInfo:
        """Return the named partition, creating it on first use."""
        if name in self._partitions:
            return self._partitions[name]
        return self.create_partition(name)

    def get(self, name: str) -> PartitionInfo:
        """Return the named partition; raises :class:`KeyError` if absent."""
        return self._partitions[name]

    def has(self, name: str) -> bool:
        return name in self._partitions

    def drop_partition(self, name: str) -> None:
        """Drop a partition and delete its file, if any."""
        info = self._partitions.pop(name)
        info.heapfile.buffer_pool.close()
        if info.path is not None and info.path.exists():
            info.path.unlink()

    def partitions(self) -> list[PartitionInfo]:
        """All catalog entries."""
        return list(self._partitions.values())

    def close(self) -> None:
        """Flush and close every partition."""
        for info in self._partitions.values():
            info.heapfile.buffer_pool.close()

    # -- aggregate statistics -------------------------------------------------------

    def total_pages(self) -> int:
        """Total allocated pages across partitions."""
        return sum(info.heapfile.num_pages() for info in self._partitions.values())

    def total_records(self) -> int:
        """Total record count as tracked by callers (see ``record_count``)."""
        return sum(info.record_count for info in self._partitions.values())

    def io_stats(self) -> dict[str, int]:
        """Aggregate physical/logical I/O counters across partitions."""
        totals = {"hits": 0, "misses": 0, "pages_read": 0, "pages_written": 0}
        for info in self._partitions.values():
            stats = info.heapfile.buffer_pool.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["pages_read"] += stats.pages_read
            totals["pages_written"] += stats.pages_written
        return totals
