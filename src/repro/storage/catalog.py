"""Partition catalog.

The :class:`StorageManager` creates and tracks named partitions — each one a
heap file backed either by a file on disk or by memory.  ReTraTree cluster
entries and the outlier set each own a partition, mirroring the
"pg3D-Rtree-k" partitions of the paper's Figure 2.

Alongside the partitions, a directory-backed manager owns one **manifest**
(``manifest.json``): a JSON document describing everything the engine needs
to reopen the directory cold — which partition archives the dataset's
trajectories and, once a ReTraTree has been built, the serialised tree
structure (see :meth:`repro.qut.retratree.ReTraTree.to_manifest`).  The
manifest is the catalog's durable root: recovery starts by reading it, and
:meth:`StorageManager.destroy` deletes it together with the partition files
so a dropped dataset reclaims its disk space.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.storage.buffer_pool import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.pager import FilePager, InMemoryPager

__all__ = ["StorageManager", "PartitionInfo", "MANIFEST_FILENAME"]

MANIFEST_FILENAME = "manifest.json"


@dataclass
class PartitionInfo:
    """Catalog entry for one partition."""

    name: str
    heapfile: HeapFile
    on_disk: bool
    path: Path | None = None
    record_count: int = 0


class StorageManager:
    """Creates, opens and drops named partitions.

    Parameters
    ----------
    directory:
        Directory for partition files.  ``None`` keeps every partition in
        memory (the default for tests and small analyses).
    buffer_pool_pages:
        Buffer pool capacity per partition, in pages.
    """

    def __init__(
        self, directory: str | Path | None = None, buffer_pool_pages: int = 64
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._buffer_pool_pages = buffer_pool_pages
        self._partitions: dict[str, PartitionInfo] = {}
        # Manifest of an in-memory manager (a directory-backed one reads and
        # writes manifest.json instead, so state survives the process).
        self._memory_manifest: dict | None = None

    # -- lifecycle ---------------------------------------------------------------

    def create_partition(self, name: str) -> PartitionInfo:
        """Create a new named partition; raises if the name already exists."""
        if name in self._partitions:
            raise ValueError(f"partition {name!r} already exists")
        if self.directory is not None:
            path = self.directory / f"{name}.part"
            pager = FilePager(path)
            on_disk = True
        else:
            path = None
            pager = InMemoryPager()
            on_disk = False
        pool = BufferPool(pager, capacity=self._buffer_pool_pages)
        info = PartitionInfo(name=name, heapfile=HeapFile(pool), on_disk=on_disk, path=path)
        self._partitions[name] = info
        return info

    def get_or_create(self, name: str) -> PartitionInfo:
        """Return the named partition, creating it on first use."""
        if name in self._partitions:
            return self._partitions[name]
        return self.create_partition(name)

    def get(self, name: str) -> PartitionInfo:
        """Return the named partition; raises :class:`KeyError` if absent."""
        return self._partitions[name]

    def has(self, name: str) -> bool:
        return name in self._partitions

    def drop_partition(self, name: str) -> None:
        """Drop a partition and delete its file, if any."""
        info = self._partitions.pop(name)
        info.heapfile.buffer_pool.close()
        if info.path is not None and info.path.exists():
            info.path.unlink()

    def partitions(self) -> list[PartitionInfo]:
        """All catalog entries."""
        return list(self._partitions.values())

    def close(self) -> None:
        """Flush and close every partition."""
        for info in self._partitions.values():
            info.heapfile.buffer_pool.close()

    def checkpoint(self) -> None:
        """Flush and fsync every partition's dirty pages, without closing.

        Called at the engine's persistence points (dataset archival, tree
        serialisation) *before* the manifest commit, so the manifest never
        references records that could be lost to a process or system crash.
        """
        for info in self._partitions.values():
            info.heapfile.buffer_pool.sync()

    def destroy(self) -> None:
        """Close everything and reclaim the on-disk footprint.

        Deletes every partition file in the directory — including ``.part``
        files left behind by earlier processes that this manager never
        opened — plus the manifest, then removes the directory if it is
        empty.  This is what makes ``engine.drop`` actually release disk
        space instead of leaving stale heapfiles for a future same-named
        dataset to trip over.
        """
        self.close()
        self._partitions.clear()
        self._memory_manifest = None
        if self.directory is None or not self.directory.exists():
            return
        # The manifest goes FIRST — it is the drop's commit point.  A crash
        # right after leaves only orphan .part files (never a manifest
        # referencing deleted heapfiles), and a cold process that sees no
        # manifest treats the directory as not catalogued.
        manifest = self.directory / MANIFEST_FILENAME
        if manifest.exists():
            manifest.unlink()
        for path in self.directory.glob("*.part"):
            path.unlink()
        # A crash inside write_manifest can strand the staging file.
        for path in self.directory.glob("*.json.tmp"):
            path.unlink()
        try:
            self.directory.rmdir()
        except OSError:  # pragma: no cover - foreign files left by the user
            pass

    # -- manifest ---------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path | None:
        """Location of the manifest file (``None`` for in-memory managers)."""
        if self.directory is None:
            return None
        return self.directory / MANIFEST_FILENAME

    def write_manifest(self, manifest: dict) -> None:
        """Persist the catalog manifest atomically and durably.

        The temp file is fsynced before the rename and the directory entry
        after it, so a system crash leaves either the previous manifest or
        the complete new one — this write is the engine's commit point.
        """
        path = self.manifest_path
        if path is None:
            self._memory_manifest = manifest
            return
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
        try:
            # Make the rename itself durable.  Directory fds are a POSIX
            # notion — on platforms without them (Windows) the rename is
            # still atomic, just not crash-ordered, which is the best
            # available there.
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX platforms
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def read_manifest(self) -> dict | None:
        """The stored manifest, or ``None`` when nothing was persisted."""
        path = self.manifest_path
        if path is None:
            return self._memory_manifest
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- aggregate statistics -------------------------------------------------------

    def total_pages(self) -> int:
        """Total allocated pages across partitions."""
        return sum(info.heapfile.num_pages() for info in self._partitions.values())

    def total_records(self) -> int:
        """Total record count as tracked by callers (see ``record_count``)."""
        return sum(info.record_count for info in self._partitions.values())

    def io_stats(self) -> dict[str, int]:
        """Aggregate physical/logical I/O counters across partitions."""
        totals = {"hits": 0, "misses": 0, "pages_read": 0, "pages_written": 0}
        for info in self._partitions.values():
            stats = info.heapfile.buffer_pool.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["pages_read"] += stats.pages_read
            totals["pages_written"] += stats.pages_written
        return totals
