"""Disk storage substrate.

This package plays the role of PostgreSQL's storage layer in the paper's
architecture (Fig. 2): ReTraTree cluster entries and the outlier set are
archived in dedicated *partitions* on disk.  The implementation is a small
but real storage engine:

* :mod:`repro.storage.page`        -- slotted 8 KiB pages,
* :mod:`repro.storage.pager`       -- file-backed and in-memory page stores,
* :mod:`repro.storage.buffer_pool` -- LRU buffer pool with hit/miss counters,
* :mod:`repro.storage.heapfile`    -- record files addressed by RID,
* :mod:`repro.storage.records`     -- (sub-)trajectory record serialisation,
* :mod:`repro.storage.catalog`     -- named partitions (create/open/drop).
"""

from repro.storage.page import Page, PAGE_SIZE
from repro.storage.pager import FilePager, InMemoryPager, Pager
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.heapfile import HeapFile, RID
from repro.storage.records import TrajectoryRecord, decode_record, encode_record
from repro.storage.catalog import StorageManager, PartitionInfo

__all__ = [
    "Page",
    "PAGE_SIZE",
    "Pager",
    "FilePager",
    "InMemoryPager",
    "BufferPool",
    "BufferPoolStats",
    "HeapFile",
    "RID",
    "TrajectoryRecord",
    "encode_record",
    "decode_record",
    "StorageManager",
    "PartitionInfo",
]
