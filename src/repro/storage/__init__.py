"""Disk storage substrate.

This package plays the role of PostgreSQL's storage layer in the paper's
architecture (Fig. 2): ReTraTree cluster entries and the outlier set are
archived in dedicated *partitions* on disk.  The implementation is a small
but real storage engine:

* :mod:`repro.storage.page`        -- slotted 8 KiB pages,
* :mod:`repro.storage.pager`       -- file-backed and in-memory page stores,
* :mod:`repro.storage.buffer_pool` -- LRU buffer pool with hit/miss counters,
* :mod:`repro.storage.heapfile`    -- record files addressed by RID,
* :mod:`repro.storage.records`     -- (sub-)trajectory record serialisation,
* :mod:`repro.storage.catalog`     -- named partitions (create/open/drop),
  manifest persistence and directory reclamation,
* :mod:`repro.storage.errors`      -- structured corruption diagnostics,
* :mod:`repro.storage.faults`      -- the OS-call shim every component does
  its I/O through, and its fault-injecting test double,
* :mod:`repro.storage.fsck`        -- offline verification and repair (the
  ``repro-fsck`` engine).

Manifest format
---------------
A directory-backed :class:`~repro.storage.catalog.StorageManager` owns one
``manifest.json``, the durable root the engine recovers from.  Layout
(``format_version`` = 3).  Older formats are still readable: version-1
manifests lack ``deltas`` and the tree's
``dataset_state``/``reps_partition``/``reps_count`` fields (missing deltas
default to none and a tree without ``dataset_state`` counts as stale and
rebuilds); version-2 manifests lack the integrity stamps ``checksums`` and
``manifest_crc`` (page verification is skipped until the next commit
upgrades the manifest in place)::

    {
      "format_version": 3,
      "dataset": "<name>",                 # dataset registered under this dir
      "frame_partition":                   # heapfile with one whole-trajectory
        "<name>__dataset_g<N>",            #   record per row (see records.py);
                                           #   generation-suffixed: replacements
                                           #   stage into a fresh partition and
                                           #   commit via the manifest write
      "row_keys": [[obj_id, traj_id], …],  # explicit row order: heapfile scan
                                           #   order may differ once records
                                           #   span pages
      "deltas": [{                         # committed append batches, in order;
        "partition":                       #   recovery decodes the base archive
          "<name>__dataset_g<M>",          #   then every delta, reconstructing
        "row_keys": [[obj, traj], …]       #   the warm process's row order
      }, …],
      "tree": null | {                     # ReTraTree.to_manifest() output
        "name": "<name>", "origin": float, "next_cluster_id": int,
        "params": {…}, "raw_params": {…},  # QuTParams.to_dict()
        "reps_partition":                  # representatives partition; staged
          "<name>__reps_g<K>",             #   fresh per persist, never rewritten
                                           #   in place under a committed manifest
        "reps_count": int,                 # torn-state check on reopen
        "dataset_state": [str, …],         # base+delta partitions the tree
                                           #   indexes; mismatch => tree stale,
                                           #   next retratree() rebuilds
        "subchunks": [{
          "chunk_idx": int, "sub_idx": int, "period": [tmin, tmax],
          "unclustered_partition": str, "unclustered_count": int,
          "entries": [{
            "cluster_id": int, "partition": str, "member_count": int,
            "bbox": [xmin, ymin, tmin, xmax, ymax, tmax] | null,
            "representative_rid": [page_no, slot]   # in reps_partition
          }, …]
        }, …]
      },
      "checksums": {                       # v3: per-page CRC32s of every
        "<partition>": [int, …], …         #   referenced partition, computed
      },                                   #   at commit, verified on first
                                           #   cold open and by repro-fsck
      "manifest_crc": int,                 # v3: CRC32 over the manifest's
                                           #   canonical JSON (excluding this
                                           #   key) — detects tampering and
                                           #   torn manifest writes
      "degraded": [str, …]                 # optional: what a repro-fsck
                                           #   --repair had to give up
                                           #   (quarantined append batches)
    }

Member records stay in their partitions' heapfiles; the manifest only adds
the structure that lived in memory.  Partition pg3D-Rtrees are not
persisted — recovery rebuilds them with one scan per partition, checking
the scanned record counts against the manifest's (a mismatch is the
signature of a torn append and degrades to a rebuild).

Failure model
-------------
Every file mutation goes through an :class:`~repro.storage.faults.IOShim`
(write, fsync, rename, unlink), so the fault-injection harness can crash
the engine at any single operation or fail operations transiently; the
crash-sweep tests drive every such point and assert recovery lands on
exactly the pre- or post-commit state.  Corruption detected anywhere
raises :class:`~repro.storage.errors.StorageCorruptionError` subclasses
naming the file, offset and partition generation — never a wrong answer —
and ``repro-fsck`` (:mod:`repro.storage.fsck`) diagnoses and repairs.
"""

from repro.storage.page import Page, PAGE_SIZE
from repro.storage.pager import FilePager, InMemoryPager, Pager
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.heapfile import HeapFile, RID
from repro.storage.records import TrajectoryRecord, decode_record, encode_record
from repro.storage.catalog import (
    StorageManager,
    PartitionInfo,
    manifest_checksum,
    page_checksums,
    staged_tmp_path,
)
from repro.storage.errors import (
    CorruptManifestError,
    CorruptPartitionError,
    StorageCorruptionError,
    partition_generation,
)
from repro.storage.faults import (
    DEFAULT_IO,
    FaultInjector,
    InjectedCrash,
    IOShim,
    with_retries,
)
from repro.storage.fsck import FsckIssue, FsckReport, fsck_store

__all__ = [
    "Page",
    "PAGE_SIZE",
    "Pager",
    "FilePager",
    "InMemoryPager",
    "BufferPool",
    "BufferPoolStats",
    "HeapFile",
    "RID",
    "TrajectoryRecord",
    "encode_record",
    "decode_record",
    "StorageManager",
    "PartitionInfo",
    "manifest_checksum",
    "page_checksums",
    "staged_tmp_path",
    "StorageCorruptionError",
    "CorruptPartitionError",
    "CorruptManifestError",
    "partition_generation",
    "IOShim",
    "DEFAULT_IO",
    "FaultInjector",
    "InjectedCrash",
    "with_retries",
    "FsckIssue",
    "FsckReport",
    "fsck_store",
]
