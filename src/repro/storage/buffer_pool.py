"""An LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

The buffer pool is what makes the "in-DBMS" benchmarks meaningful: index
probes touch a handful of pages (buffer hits after warm-up), whereas naive
full scans churn through every partition page.  Hit/miss and physical I/O
counters are exposed through :class:`BufferPoolStats` and consumed by the
E6/E7 benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.page import Page
from repro.storage.pager import Pager

__all__ = ["BufferPool", "BufferPoolStats"]


@dataclass
class BufferPoolStats:
    """Counters of logical and physical page accesses."""

    hits: int = 0
    misses: int = 0
    pages_read: int = 0
    pages_written: int = 0
    evictions: int = 0

    @property
    def logical_reads(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.logical_reads
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.pages_read = self.pages_written = self.evictions = 0


@dataclass
class _Frame:
    page: Page
    dirty: bool = False


class BufferPool:
    """Fixed-capacity page cache with LRU replacement and write-back."""

    def __init__(self, pager: Pager, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self._pager = pager
        self._capacity = capacity
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self.stats = BufferPoolStats()

    # -- page access -----------------------------------------------------------

    @property
    def io_retries(self) -> int:
        """Transient I/O failures the underlying pager absorbed via retries.

        Zero for pagers without retry support (the in-memory pager).
        Surfaced through :meth:`repro.storage.catalog.StorageManager.io_stats`
        so operators can spot a flaky disk before it turns into downtime.
        """
        return getattr(self._pager, "io_retries", 0)

    def num_pages(self) -> int:
        """Number of pages in the underlying pager."""
        return self._pager.num_pages()

    def allocate_page(self) -> int:
        """Allocate a fresh page in the underlying pager and cache it."""
        page_no = self._pager.allocate_page()
        self._admit(page_no, _Frame(Page(), dirty=False))
        return page_no

    def get_page(self, page_no: int) -> Page:
        """Fetch a page, reading it from the pager on a miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
            return frame.page
        self.stats.misses += 1
        self.stats.pages_read += 1
        page = self._pager.read_page(page_no)
        self._admit(page_no, _Frame(page))
        return page

    def mark_dirty(self, page_no: int) -> None:
        """Record that the cached copy of ``page_no`` has been modified."""
        frame = self._frames.get(page_no)
        if frame is None:
            raise KeyError(f"page {page_no} is not resident in the buffer pool")
        frame.dirty = True

    # -- write-back ---------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        """Write a dirty cached page back to the pager."""
        frame = self._frames.get(page_no)
        if frame is not None and frame.dirty:
            self._pager.write_page(page_no, frame.page)
            self.stats.pages_written += 1
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty page and flush the pager's own buffers."""
        for page_no in list(self._frames):
            self.flush_page(page_no)
        self._pager.flush()

    def sync(self) -> None:
        """:meth:`flush_all` plus an fsync to stable storage (durable pagers)."""
        self.flush_all()
        self._pager.sync()

    def close(self) -> None:
        """Flush everything and close the pager."""
        self.flush_all()
        self._pager.close()

    # -- internals ------------------------------------------------------------------

    def _admit(self, page_no: int, frame: _Frame) -> None:
        self._frames[page_no] = frame
        self._frames.move_to_end(page_no)
        while len(self._frames) > self._capacity:
            victim_no, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self._pager.write_page(victim_no, victim.page)
                self.stats.pages_written += 1
            self.stats.evictions += 1
