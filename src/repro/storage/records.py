"""Serialisation of (sub-)trajectory records.

A partition stores one record per (sub-)trajectory.  The binary layout is:

```
uint16 obj_id_len | obj_id utf-8 | uint16 traj_id_len | traj_id utf-8 |
int32 parent_start | int32 parent_end | uint32 n | n * (f64 x, f64 y, f64 t)
```

``parent_start``/``parent_end`` are the sample bounds inside the parent
trajectory for sub-trajectory records, or ``-1`` for whole trajectories.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.hermes.trajectory import SubTrajectory, Trajectory

__all__ = ["TrajectoryRecord", "encode_record", "decode_record"]

_U16 = struct.Struct("<H")
_I32 = struct.Struct("<i")
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class TrajectoryRecord:
    """The decoded form of a stored record."""

    obj_id: str
    traj_id: str
    parent_start: int
    parent_end: int
    xs: np.ndarray
    ys: np.ndarray
    ts: np.ndarray

    @property
    def is_subtrajectory(self) -> bool:
        return self.parent_start >= 0

    def to_trajectory(self) -> Trajectory:
        """Materialise the record as a :class:`Trajectory`."""
        return Trajectory(self.obj_id, self.traj_id, self.xs, self.ys, self.ts)


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 65535:
        raise ValueError("identifier too long to serialise")
    return _U16.pack(len(raw)) + raw


def encode_record(item: Trajectory | SubTrajectory) -> bytes:
    """Serialise a trajectory or sub-trajectory into bytes."""
    if isinstance(item, SubTrajectory):
        traj = item.traj
        obj_id, traj_id = item.parent_key
        parent_start, parent_end = item.start_idx, item.end_idx
    else:
        traj = item
        obj_id, traj_id = item.obj_id, item.traj_id
        parent_start = parent_end = -1
    parts = [
        _pack_str(obj_id),
        _pack_str(traj_id),
        _I32.pack(parent_start),
        _I32.pack(parent_end),
        _U32.pack(traj.num_points),
        np.column_stack([traj.xs, traj.ys, traj.ts]).astype("<f8").tobytes(),
    ]
    return b"".join(parts)


def decode_record(raw: bytes) -> TrajectoryRecord:
    """Deserialise bytes produced by :func:`encode_record`.

    Raises :class:`ValueError` with a ``truncated record`` diagnostic when
    the bytes end before the layout says they should — the signature of a
    torn write or a corrupt slot — instead of returning a short-read
    trajectory or an opaque struct error.
    """
    offset = 0

    def need(count: int, what: str) -> None:
        if offset + count > len(raw):
            raise ValueError(
                f"truncated record: {what} needs bytes [{offset}, {offset + count}) "
                f"but only {len(raw)} are stored"
            )

    def unpack_str() -> str:
        nonlocal offset
        need(_U16.size, "identifier length")
        (length,) = _U16.unpack_from(raw, offset)
        offset += _U16.size
        need(length, "identifier")
        value = raw[offset : offset + length].decode("utf-8")
        offset += length
        return value

    obj_id = unpack_str()
    traj_id = unpack_str()
    need(2 * _I32.size + _U32.size, "record header")
    (parent_start,) = _I32.unpack_from(raw, offset)
    offset += _I32.size
    (parent_end,) = _I32.unpack_from(raw, offset)
    offset += _I32.size
    (n,) = _U32.unpack_from(raw, offset)
    offset += _U32.size
    need(24 * n, f"{n} samples")
    data = np.frombuffer(raw, dtype="<f8", count=3 * n, offset=offset).reshape(n, 3)
    return TrajectoryRecord(
        obj_id=obj_id,
        traj_id=traj_id,
        parent_start=parent_start,
        parent_end=parent_end,
        xs=data[:, 0].copy(),
        ys=data[:, 1].copy(),
        ts=data[:, 2].copy(),
    )
