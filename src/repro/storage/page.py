"""Slotted pages.

Records inside a page are addressed by slot number.  The layout is the
classic slotted-page design used by PostgreSQL heap pages:

```
+-------------------+----------------------------+------------------+
| header (4 bytes)  | slot directory (4 B/slot)  | ... free ... data|
+-------------------+----------------------------+------------------+
```

* header: ``uint16 num_slots``, ``uint16 data_start`` (offset of the lowest
  record byte; records grow downwards from the end of the page),
* slot entry: ``uint16 offset``, ``uint16 length``; an offset of 0 marks a
  deleted slot (0 can never be a record offset because the header occupies
  the first bytes of the page), so zero-length records remain representable.
"""

from __future__ import annotations

import struct

from repro.storage.errors import StorageError

__all__ = ["Page", "PAGE_SIZE"]

PAGE_SIZE = 8192
_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")


class PageFullError(StorageError):
    """Raised when a record does not fit in the page.

    Part of the storage exception contract: subclasses
    :class:`~repro.storage.errors.StorageError` so it may escape public
    storage functions (heapfiles catch it to allocate a fresh page; a
    caller seeing it directly still gets a contract type).
    """


class Page:
    """A single slotted page of ``PAGE_SIZE`` bytes."""

    __slots__ = ("data",)

    def __init__(self, data: bytes | bytearray | None = None) -> None:
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self._write_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError(f"page must be exactly {PAGE_SIZE} bytes")
            self.data = bytearray(data)
            if self.num_slots == 0 and self.data_start == 0:
                # Freshly zeroed page: initialise the header.
                self._write_header(0, PAGE_SIZE)

    # -- header helpers ------------------------------------------------------

    def _write_header(self, num_slots: int, data_start: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, data_start % 65536)

    @property
    def num_slots(self) -> int:
        """Number of slot entries (including deleted ones)."""
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def data_start(self) -> int:
        """Offset of the first (lowest) used data byte."""
        raw = _HEADER.unpack_from(self.data, 0)[1]
        return PAGE_SIZE if raw == 0 and self.num_slots == 0 else raw or PAGE_SIZE

    def _slot_offset(self, slot: int) -> int:
        return _HEADER.size + slot * _SLOT.size

    def _read_slot(self, slot: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self.data, self._slot_offset(slot))

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, self._slot_offset(slot), offset, length)

    # -- capacity -------------------------------------------------------------

    @property
    def free_space(self) -> int:
        """Bytes available for a new record (including its slot entry)."""
        directory_end = _HEADER.size + self.num_slots * _SLOT.size
        return max(0, self.data_start - directory_end)

    def fits(self, record: bytes) -> bool:
        """Whether ``record`` (plus a new slot entry) fits in this page."""
        return len(record) + _SLOT.size <= self.free_space

    # -- record operations ------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record and return its slot number.

        Raises :class:`PageFullError` when the record does not fit.  Records
        longer than what an empty page can hold are rejected with
        :class:`ValueError` (callers must chunk them at a higher level).
        """
        if len(record) + _SLOT.size > PAGE_SIZE - _HEADER.size:
            raise ValueError(
                f"record of {len(record)} bytes can never fit in a {PAGE_SIZE}-byte page"
            )
        if not self.fits(record):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit (free={self.free_space})"
            )
        slot = self.num_slots
        new_start = self.data_start - len(record)
        self.data[new_start : new_start + len(record)] = record
        self._write_slot(slot, new_start, len(record))
        self._write_header(slot + 1, new_start)
        return slot

    def read(self, slot: int) -> bytes:
        """Read the record stored at ``slot``.

        Raises :class:`KeyError` for out-of-range or deleted slots.
        """
        if not (0 <= slot < self.num_slots):
            raise KeyError(f"slot {slot} out of range (page has {self.num_slots} slots)")
        offset, length = self._read_slot(slot)
        if offset == 0:
            raise KeyError(f"slot {slot} has been deleted")
        self._check_slot_bounds(slot, offset, length)
        return bytes(self.data[offset : offset + length])

    def _check_slot_bounds(self, slot: int, offset: int, length: int) -> None:
        """Reject slot entries describing impossible records.

        A valid record lives strictly between the slot directory and the
        page end; anything else is a corrupt (bit-flipped or torn) slot
        entry, and silently returning the garbage bytes it points at would
        let corruption propagate into query answers.
        """
        directory_end = _HEADER.size + self.num_slots * _SLOT.size
        if offset < directory_end or offset + length > PAGE_SIZE:
            raise ValueError(
                f"slot {slot} is corrupt: record [{offset}, {offset + length}) "
                f"lies outside the valid data area [{directory_end}, {PAGE_SIZE})"
            )

    def delete(self, slot: int) -> None:
        """Mark the record at ``slot`` as deleted (space is not reclaimed)."""
        if not (0 <= slot < self.num_slots):
            raise KeyError(f"slot {slot} out of range")
        self._write_slot(slot, 0, 0)

    def records(self) -> list[tuple[int, bytes]]:
        """All live ``(slot, record)`` pairs of the page."""
        out = []
        for slot in range(self.num_slots):
            offset, length = self._read_slot(slot)
            if offset:
                self._check_slot_bounds(slot, offset, length)
                out.append((slot, bytes(self.data[offset : offset + length])))
        return out

    def to_bytes(self) -> bytes:
        """The raw page image."""
        return bytes(self.data)
