"""Holding-pattern detection (Fig. 4).

Aircraft waiting for a landing slot fly *holding patterns*: closed loops near
a holding fix.  Geometrically, a loop is a stretch of movement whose heading
accumulates (at least) a full turn while staying within a small spatial
extent.  :func:`detect_holding_patterns` scans trajectories (or cluster
members) with that criterion and returns the loops found, which is the data
behind the paper's Figure 4 view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hermes.mod import MOD
from repro.hermes.trajectory import Trajectory
from repro.hermes.types import Period
from repro.s2t.result import ClusteringResult

__all__ = ["HoldingPattern", "detect_holding_patterns", "turning_angle"]


@dataclass(frozen=True)
class HoldingPattern:
    """A detected loop: who, when, where and how many turns."""

    obj_id: str
    traj_key: tuple[str, str]
    period: Period
    center: tuple[float, float]
    radius: float
    turns: float
    cluster_id: int | None = None


def turning_angle(xs: np.ndarray, ys: np.ndarray) -> float:
    """Total signed turning angle (radians) along a polyline."""
    dx = np.diff(xs)
    dy = np.diff(ys)
    headings = np.arctan2(dy, dx)
    turns = np.diff(headings)
    # Wrap to (-pi, pi] so that noise does not register as full turns.
    turns = (turns + np.pi) % (2 * np.pi) - np.pi
    return float(np.sum(turns))


def _scan_trajectory(
    traj: Trajectory,
    min_turns: float,
    max_radius_fraction: float,
    extent: float,
    window: int,
) -> list[tuple[int, int, float, tuple[float, float], float]]:
    """Sliding-window loop scan; returns (start, end, turns, center, radius) hits."""
    hits = []
    n = traj.num_points
    step = max(1, window // 2)
    i = 0
    while i + window < n:
        j = min(i + window, n - 1)
        xs = traj.xs[i : j + 1]
        ys = traj.ys[i : j + 1]
        total_turn = abs(turning_angle(xs, ys))
        cx, cy = float(np.mean(xs)), float(np.mean(ys))
        radius = float(np.max(np.hypot(xs - cx, ys - cy)))
        # A loop turns through (at least) a full revolution, stays compact,
        # and ends up roughly where it started: the net displacement is small
        # compared to the distance flown.  The last criterion is what tells a
        # genuine holding pattern apart from GPS-jitter on a straight leg.
        path_length = float(np.sum(np.hypot(np.diff(xs), np.diff(ys))))
        displacement = float(np.hypot(xs[-1] - xs[0], ys[-1] - ys[0]))
        closes_on_itself = path_length > 0 and displacement / path_length < 0.5
        if (
            total_turn >= min_turns * 2 * np.pi
            and radius <= max_radius_fraction * extent
            and closes_on_itself
        ):
            hits.append((i, j, total_turn / (2 * np.pi), (cx, cy), radius))
            i = j  # skip past the detected loop
        else:
            i += step
    return hits


def detect_holding_patterns(
    source: MOD | ClusteringResult,
    min_turns: float = 0.9,
    max_radius_fraction: float = 0.15,
    window: int = 20,
) -> list[HoldingPattern]:
    """Detect holding-pattern loops.

    Parameters
    ----------
    source:
        Either a MOD (scan every trajectory) or a clustering result (scan
        cluster members, tagging each hit with its cluster id).
    min_turns:
        Minimum accumulated turning, in full revolutions.
    max_radius_fraction:
        Maximum loop radius as a fraction of the data's spatial diagonal.
    window:
        Sliding-window length in samples.
    """
    patterns: list[HoldingPattern] = []

    if isinstance(source, MOD):
        bbox = source.bbox
        extent = (bbox.dx**2 + bbox.dy**2) ** 0.5
        items: list[tuple[Trajectory, tuple[str, str], int | None]] = [
            (traj, traj.key, None) for traj in source
        ]
    else:
        subs = [(sub, cid) for sub, cid in source.all_subtrajectories() if cid is not None]
        if not subs:
            return []
        xs = [float(sub.traj.xs.min()) for sub, _ in subs] + [
            float(sub.traj.xs.max()) for sub, _ in subs
        ]
        ys = [float(sub.traj.ys.min()) for sub, _ in subs] + [
            float(sub.traj.ys.max()) for sub, _ in subs
        ]
        extent = ((max(xs) - min(xs)) ** 2 + (max(ys) - min(ys)) ** 2) ** 0.5
        items = [(sub.traj, sub.parent_key, cid) for sub, cid in subs]

    if extent <= 0:
        return []

    for traj, key, cluster_id in items:
        for start, end, turns, center, radius in _scan_trajectory(
            traj, min_turns, max_radius_fraction, extent, window
        ):
            patterns.append(
                HoldingPattern(
                    obj_id=traj.obj_id,
                    traj_key=key,
                    period=Period(float(traj.ts[start]), float(traj.ts[end])),
                    center=center,
                    radius=radius,
                    turns=turns,
                    cluster_id=cluster_id,
                )
            )
    return patterns
