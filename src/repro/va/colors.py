"""Deterministic categorical colours for cluster displays."""

from __future__ import annotations

__all__ = ["categorical_color", "PALETTE"]

# A colour-blind-friendly 12-colour palette (hex RGB).
PALETTE = [
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
    "#1b9e77",
    "#d95f02",
]

OUTLIER_COLOR = "#888888"


def categorical_color(index: int | None) -> str:
    """Colour for cluster ``index``; ``None`` (outliers) maps to grey."""
    if index is None:
        return OUTLIER_COLOR
    return PALETTE[index % len(PALETTE)]
