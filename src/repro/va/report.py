"""Textual analysis reports.

The VA tool's views are interactive; for scripted use (and for regression
artifacts) it is convenient to render one clustering result — or a
progressive session — as a self-contained Markdown report combining the
summary, the largest clusters, the cardinality histogram and the detected
movement patterns.
"""

from __future__ import annotations

from repro.s2t.result import ClusteringResult
from repro.va.histogram import cluster_time_histogram
from repro.va.patterns import detect_holding_patterns

__all__ = ["clustering_report"]


def _markdown_table(rows: list[dict[str, object]]) -> list[str]:
    if not rows:
        return ["*(empty)*"]
    columns: list[str] = []
    for row in rows:
        for col in row:
            if col not in columns:
                columns.append(col)
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    return lines


def clustering_report(
    result: ClusteringResult,
    title: str = "Sub-trajectory clustering report",
    histogram_bins: int = 24,
    max_clusters: int = 10,
    include_patterns: bool = True,
) -> str:
    """Render a clustering result as a Markdown report.

    The report contains the method summary, the ``max_clusters`` largest
    clusters, the cluster-cardinality time histogram (as rows) and, when
    ``include_patterns`` is set, the holding patterns detected among the
    cluster members.
    """
    lines: list[str] = [f"# {title}", ""]

    lines.append("## Summary")
    lines.append("")
    lines.extend(_markdown_table([result.summary()]))
    lines.append("")

    lines.append(f"## Largest clusters (top {max_clusters})")
    lines.append("")
    cluster_rows = [
        {
            "cluster": c.cluster_id,
            "members": c.size,
            "objects": len(c.object_ids()),
            "t_start": round(c.period.tmin, 1),
            "t_end": round(c.period.tmax, 1),
            "representative": c.representative.obj_id,
        }
        for c in sorted(result.clusters, key=lambda c: c.size, reverse=True)[:max_clusters]
    ]
    lines.extend(_markdown_table(cluster_rows))
    lines.append("")

    if result.clusters:
        lines.append("## Cluster cardinality over time")
        lines.append("")
        histogram = cluster_time_histogram(result, n_bins=histogram_bins)
        totals = histogram.total_per_bin()
        histogram_rows = [
            {
                "bin": b,
                "t_start": round(float(histogram.bin_edges[b]), 1),
                "members_alive": int(totals[b]),
            }
            for b in range(histogram.num_bins)
        ]
        lines.extend(_markdown_table(histogram_rows))
        lines.append("")

    if include_patterns:
        patterns = detect_holding_patterns(result)
        lines.append("## Holding patterns among cluster members")
        lines.append("")
        if patterns:
            pattern_rows = [
                {
                    "object": p.obj_id,
                    "cluster": p.cluster_id,
                    "turns": round(p.turns, 2),
                    "radius": round(p.radius, 1),
                    "t_start": round(p.period.tmin, 1),
                    "t_end": round(p.period.tmax, 1),
                }
                for p in patterns
            ]
            lines.extend(_markdown_table(pattern_rows))
        else:
            lines.append("*(none detected)*")
        lines.append("")

    if result.timings:
        lines.append("## Phase timings")
        lines.append("")
        lines.extend(
            _markdown_table(
                [{"phase": name, "seconds": round(value, 4)} for name, value in result.timings.items()]
            )
        )
        lines.append("")

    return "\n".join(lines)
