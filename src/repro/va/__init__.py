"""Visual-analytics data products.

The paper's V-Analytics front-end renders four kinds of views (Figures 1, 3
and 4).  This package computes the *data* behind each view so that any
plotting front-end (or a plain terminal) can render it:

* :mod:`repro.va.histogram` -- the time histogram of cluster cardinalities
  (Fig. 1 middle),
* :mod:`repro.va.maps`      -- cluster-coloured map layers, GeoJSON-style
  exports and 3D (x, y, t) exports of cluster members (Fig. 1 top/bottom),
* :mod:`repro.va.compare`   -- side-by-side comparison of the representatives
  of two clustering runs (Fig. 3),
* :mod:`repro.va.patterns`  -- holding-pattern (loop) detection among
  clusters / trajectories (Fig. 4).
"""

from repro.va.histogram import TimeHistogram, cluster_time_histogram
from repro.va.maps import MapLayer, cluster_map_layers, export_3d_points, export_geojson
from repro.va.compare import RunComparison, compare_runs
from repro.va.patterns import HoldingPattern, detect_holding_patterns
from repro.va.colors import categorical_color
from repro.va.report import clustering_report

__all__ = [
    "TimeHistogram",
    "cluster_time_histogram",
    "MapLayer",
    "cluster_map_layers",
    "export_geojson",
    "export_3d_points",
    "RunComparison",
    "compare_runs",
    "HoldingPattern",
    "detect_holding_patterns",
    "categorical_color",
    "clustering_report",
]
