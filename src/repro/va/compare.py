"""Comparison of two clustering runs (Fig. 3).

The paper's scenario 1 puts the cluster representatives of two S2T runs in
the same 3D display so the analyst can see which flows both runs agree on
and which are specific to one parameterisation.  :func:`compare_runs`
computes that correspondence: representative pairs whose spatial paths match
within a threshold, plus the representatives unique to each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hermes.distances import hausdorff_distance, spatiotemporal_distance
from repro.s2t.result import ClusteringResult

__all__ = ["RunComparison", "compare_runs"]


@dataclass
class RunComparison:
    """Outcome of matching the representatives of two runs."""

    matched: list[tuple[int, int, float]] = field(default_factory=list)
    only_in_a: list[int] = field(default_factory=list)
    only_in_b: list[int] = field(default_factory=list)

    @property
    def num_matched(self) -> int:
        return len(self.matched)

    def summary(self) -> dict[str, object]:
        return {
            "matched_pairs": self.num_matched,
            "only_in_run_a": len(self.only_in_a),
            "only_in_run_b": len(self.only_in_b),
        }

    def to_rows(self) -> list[dict[str, object]]:
        """Printable rows: one per matched pair plus one per unmatched cluster."""
        rows: list[dict[str, object]] = []
        for a_id, b_id, dist in self.matched:
            rows.append(
                {"run_a_cluster": a_id, "run_b_cluster": b_id, "distance": dist, "status": "matched"}
            )
        for a_id in self.only_in_a:
            rows.append(
                {"run_a_cluster": a_id, "run_b_cluster": "-", "distance": "-", "status": "only in A"}
            )
        for b_id in self.only_in_b:
            rows.append(
                {"run_a_cluster": "-", "run_b_cluster": b_id, "distance": "-", "status": "only in B"}
            )
        return rows


def compare_runs(
    run_a: ClusteringResult,
    run_b: ClusteringResult,
    distance_threshold: float,
    time_aware: bool = True,
) -> RunComparison:
    """Greedy one-to-one matching of cluster representatives across two runs.

    Pairs are considered in order of increasing distance; a pair is accepted
    when neither side is matched yet and the distance is below
    ``distance_threshold``.  ``time_aware`` switches between the synchronous
    spatiotemporal distance and the purely spatial Hausdorff distance (useful
    when the two runs analysed different time windows).
    """
    candidates: list[tuple[float, int, int]] = []
    for ca in run_a.clusters:
        for cb in run_b.clusters:
            if time_aware:
                dist = spatiotemporal_distance(
                    ca.representative.traj, cb.representative.traj, max_samples=32
                )
            else:
                dist = hausdorff_distance(ca.representative.traj, cb.representative.traj)
            if dist <= distance_threshold:
                candidates.append((float(dist), ca.cluster_id, cb.cluster_id))
    candidates.sort()

    comparison = RunComparison()
    used_a: set[int] = set()
    used_b: set[int] = set()
    for dist, a_id, b_id in candidates:
        if a_id in used_a or b_id in used_b:
            continue
        used_a.add(a_id)
        used_b.add(b_id)
        comparison.matched.append((a_id, b_id, dist))
    comparison.only_in_a = [c.cluster_id for c in run_a.clusters if c.cluster_id not in used_a]
    comparison.only_in_b = [c.cluster_id for c in run_b.clusters if c.cluster_id not in used_b]
    return comparison
