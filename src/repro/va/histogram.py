"""Time histogram of cluster cardinalities (Fig. 1, middle view).

Each bar of the histogram is one time bin; within a bar, every cluster
contributes a segment whose height is the number of that cluster's members
alive during the bin — exactly the stacked bar display of the paper's VA
tool ("the existence times of the clusters and the changes of their
cardinality over time").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hermes.types import Period
from repro.s2t.result import ClusteringResult
from repro.va.colors import categorical_color

__all__ = ["TimeHistogram", "cluster_time_histogram"]


@dataclass
class TimeHistogram:
    """Stacked histogram data: ``counts[cluster_index, bin]``."""

    bin_edges: np.ndarray
    cluster_ids: list[int]
    counts: np.ndarray

    @property
    def num_bins(self) -> int:
        return len(self.bin_edges) - 1

    def bin_period(self, bin_idx: int) -> Period:
        return Period(float(self.bin_edges[bin_idx]), float(self.bin_edges[bin_idx + 1]))

    def total_per_bin(self) -> np.ndarray:
        """Total cluster members alive per bin (the bar heights)."""
        return self.counts.sum(axis=0)

    def series_for(self, cluster_id: int) -> np.ndarray:
        """Cardinality-over-time series of one cluster."""
        idx = self.cluster_ids.index(cluster_id)
        return self.counts[idx]

    def existence_period(self, cluster_id: int) -> Period | None:
        """First-to-last bin period during which the cluster has members."""
        series = self.series_for(cluster_id)
        alive = np.flatnonzero(series > 0)
        if len(alive) == 0:
            return None
        return Period(float(self.bin_edges[alive[0]]), float(self.bin_edges[alive[-1] + 1]))

    def to_rows(self) -> list[dict[str, object]]:
        """One row per (bin, cluster) with a positive count — printable form."""
        rows = []
        for b in range(self.num_bins):
            for c_idx, cluster_id in enumerate(self.cluster_ids):
                count = int(self.counts[c_idx, b])
                if count > 0:
                    rows.append(
                        {
                            "bin": b,
                            "t_start": float(self.bin_edges[b]),
                            "t_end": float(self.bin_edges[b + 1]),
                            "cluster": cluster_id,
                            "color": categorical_color(cluster_id),
                            "members_alive": count,
                        }
                    )
        return rows


def cluster_time_histogram(
    result: ClusteringResult,
    n_bins: int = 60,
    period: Period | None = None,
) -> TimeHistogram:
    """Build the cluster-cardinality time histogram of a clustering result.

    Parameters
    ----------
    result:
        Any clustering result (S2T, QuT or a baseline).
    n_bins:
        Number of equal-width time bins.
    period:
        Time range of the histogram; defaults to the span of the result's
        clusters and outliers.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    all_subs = [sub for sub, _cid in result.all_subtrajectories()]
    if period is None:
        if not all_subs:
            raise ValueError("cannot infer a period from an empty result")
        tmin = min(s.period.tmin for s in all_subs)
        tmax = max(s.period.tmax for s in all_subs)
        period = Period(tmin, tmax)
    edges = np.linspace(period.tmin, period.tmax, n_bins + 1)

    cluster_ids = [c.cluster_id for c in result.clusters]
    counts = np.zeros((len(cluster_ids), n_bins), dtype=int)
    for c_idx, cluster in enumerate(result.clusters):
        for member in cluster.members:
            lo = np.searchsorted(edges, member.period.tmin, side="right") - 1
            hi = np.searchsorted(edges, member.period.tmax, side="left")
            lo = max(int(lo), 0)
            hi = min(int(hi), n_bins)
            if hi <= lo:
                hi = lo + 1
            counts[c_idx, lo:hi] += 1
    return TimeHistogram(bin_edges=edges, cluster_ids=cluster_ids, counts=counts)
