"""Map-display and 3D-display exports (Fig. 1 top and bottom views).

The VA tool paints each cluster's members on a map with the cluster's colour
and lets the user show/hide individual clusters; the 3D display shows the
members as polylines in (x, y, t) space.  The functions here produce those
layers as plain data structures (and a GeoJSON-style dict for map tools).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.s2t.result import ClusteringResult
from repro.va.colors import categorical_color

__all__ = ["MapLayer", "cluster_map_layers", "export_geojson", "export_3d_points"]


@dataclass
class MapLayer:
    """One toggleable layer of the map display: one cluster (or the outliers)."""

    cluster_id: int | None
    color: str
    visible: bool = True
    polylines: list[list[tuple[float, float]]] = field(default_factory=list)
    member_keys: list[tuple[str, str, int, int]] = field(default_factory=list)

    @property
    def label(self) -> str:
        return "outliers" if self.cluster_id is None else f"cluster {self.cluster_id}"

    @property
    def size(self) -> int:
        return len(self.polylines)


def cluster_map_layers(
    result: ClusteringResult, include_outliers: bool = True
) -> list[MapLayer]:
    """Build one map layer per cluster (plus one for the outliers).

    The user-facing toggling of the paper's VA tool maps to flipping each
    layer's ``visible`` flag.
    """
    layers: list[MapLayer] = []
    for cluster in result.clusters:
        layer = MapLayer(cluster_id=cluster.cluster_id, color=categorical_color(cluster.cluster_id))
        for member in cluster.members:
            layer.polylines.append(
                [(float(x), float(y)) for x, y in zip(member.traj.xs, member.traj.ys)]
            )
            layer.member_keys.append(member.key)
        layers.append(layer)
    if include_outliers:
        layer = MapLayer(cluster_id=None, color=categorical_color(None))
        for sub in result.outliers:
            layer.polylines.append(
                [(float(x), float(y)) for x, y in zip(sub.traj.xs, sub.traj.ys)]
            )
            layer.member_keys.append(sub.key)
        layers.append(layer)
    return layers


def export_geojson(result: ClusteringResult, include_outliers: bool = True) -> dict:
    """A GeoJSON FeatureCollection with one LineString feature per member."""
    features = []
    for layer in cluster_map_layers(result, include_outliers=include_outliers):
        for polyline, key in zip(layer.polylines, layer.member_keys):
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "LineString",
                        "coordinates": [[x, y] for x, y in polyline],
                    },
                    "properties": {
                        "cluster": layer.cluster_id,
                        "color": layer.color,
                        "obj_id": key[0],
                        "traj_id": key[1],
                        "start_idx": key[2],
                        "end_idx": key[3],
                    },
                }
            )
    return {"type": "FeatureCollection", "features": features}


def export_3d_points(result: ClusteringResult, include_outliers: bool = True) -> list[dict]:
    """Rows of ``(obj_id, cluster, x, y, t)`` for the 3D display / space-time cube."""
    rows: list[dict] = []
    for sub, cluster_id in result.all_subtrajectories():
        if cluster_id is None and not include_outliers:
            continue
        for x, y, t in zip(sub.traj.xs, sub.traj.ys, sub.traj.ts):
            rows.append(
                {
                    "obj_id": sub.obj_id,
                    "cluster": cluster_id,
                    "color": categorical_color(cluster_id),
                    "x": float(x),
                    "y": float(y),
                    "t": float(t),
                }
            )
    return rows
