"""Index structures built on the GiST framework.

* :mod:`repro.index.rtree3d`  -- the pg3D-Rtree: a 3D R-tree over
  :class:`~repro.hermes.types.BoxST` keys, implemented as a GiST key adapter
  (quadratic split, area penalty), with STR bulk loading and kNN search.
* :mod:`repro.index.interval` -- a 1D temporal interval index used by the
  upper (temporal) levels of the ReTraTree.
"""

from repro.index.rtree3d import RTree3D, Box3DAdapter, str_bulk_load
from repro.index.interval import IntervalIndex

__all__ = ["RTree3D", "Box3DAdapter", "str_bulk_load", "IntervalIndex"]
