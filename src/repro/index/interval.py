"""A 1D temporal interval index.

The top two levels of the ReTraTree organise data purely by time; this index
answers "which entries overlap period W?" without scanning everything.  It is
a sorted-by-start list with binary search on the query's upper bound, which
is simple, allocation-free and fast for the chunk counts a ReTraTree holds.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.hermes.types import Period

__all__ = ["IntervalIndex"]

V = TypeVar("V")


class IntervalIndex(Generic[V]):
    """Maps time periods to values and answers overlap queries."""

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._items: list[tuple[Period, V]] = []

    @classmethod
    def bulk_load(cls, items: list[tuple[Period, V]]) -> "IntervalIndex[V]":
        """Build an index from many entries at once.

        A single ``O(n log n)`` sort instead of ``n`` sorted insertions —
        this is how the voting phase's sweep-line temporal prefilter builds
        its per-MOD lifespan index.
        """
        index: IntervalIndex[V] = cls()
        ordered = sorted(items, key=lambda item: item[0].tmin)
        index._items = ordered
        index._starts = [period.tmin for period, _value in ordered]
        return index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[tuple[Period, V]]:
        return iter(self._items)

    def insert(self, period: Period, value: V) -> None:
        """Insert a (period, value) pair, keeping entries sorted by start."""
        idx = bisect.bisect_right(self._starts, period.tmin)
        self._starts.insert(idx, period.tmin)
        self._items.insert(idx, (period, value))

    def overlapping(self, query: Period) -> list[tuple[Period, V]]:
        """All entries whose period overlaps ``query``.

        Entries are sorted by start; entries starting after ``query.tmax``
        cannot overlap, so the scan stops at the bisection point.
        """
        hi = bisect.bisect_right(self._starts, query.tmax)
        return [
            (period, value)
            for period, value in self._items[:hi]
            if period.tmax >= query.tmin
        ]

    def covering(self, instant: float) -> list[tuple[Period, V]]:
        """All entries whose period contains ``instant``."""
        return self.overlapping(Period(instant, instant))

    def values(self) -> list[V]:
        """Every stored value in start order."""
        return [value for _period, value in self._items]

    def remove(self, value: V) -> int:
        """Remove all entries with the given value; returns the removed count."""
        keep = [(p, v) for p, v in self._items if v != value]
        removed = len(self._items) - len(keep)
        self._items = keep
        self._starts = [p.tmin for p, _ in keep]
        return removed
