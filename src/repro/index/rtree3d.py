"""pg3D-Rtree: a 3D R-tree over spatiotemporal boxes, built on GiST.

The paper stresses that Hermes' R-tree is "implemented from scratch on top of
GiST" and is independent of PostGIS.  Accordingly, the R-tree here is nothing
more than a :class:`~repro.gist.tree.GiST` instantiated with
:class:`Box3DAdapter`, which supplies the classic R-tree behaviours:

* ``consistent``  -- box intersection (for range queries) or containment,
* ``union``       -- minimum bounding box of boxes,
* ``penalty``     -- volume enlargement (Guttman's ChooseLeaf criterion),
* ``pick_split``  -- Guttman's quadratic split.

On top of the GiST the module adds Sort-Tile-Recursive (STR) bulk loading and
best-first kNN search, both used by the benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Iterable, Sequence
from typing import Generic, TypeVar

from repro.gist.tree import GiST, KeyAdapter
from repro.hermes.types import BoxST, PointST

__all__ = ["Box3DAdapter", "RTree3D", "str_bulk_load"]

V = TypeVar("V")


class Box3DAdapter(KeyAdapter[BoxST]):
    """GiST key adapter giving R-tree semantics to :class:`BoxST` keys."""

    def __init__(self, min_fill: int = 2) -> None:
        self.min_fill = min_fill

    def consistent(self, key: BoxST, query: BoxST) -> bool:
        """A subtree can match when its bounding box intersects the query box."""
        return key.intersects(query)

    def union(self, keys: Sequence[BoxST]) -> BoxST:
        out = keys[0]
        for key in keys[1:]:
            out = out.union(key)
        return out

    def penalty(self, key: BoxST, new_key: BoxST) -> float:
        """Volume enlargement, with volume as tie-breaker (Guttman)."""
        enlargement = key.enlargement(new_key)
        return enlargement + 1e-9 * key.volume

    def pick_split(self, keys: Sequence[BoxST]) -> tuple[list[int], list[int]]:
        """Guttman's quadratic split.

        Picks the pair of entries that would waste the most volume if put in
        the same group as seeds, then assigns remaining entries to the group
        whose bounding box needs the least enlargement, while respecting the
        minimum fill.
        """
        n = len(keys)
        # Seed selection: maximise dead space.
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i, j in itertools.combinations(range(n), 2):
            waste = keys[i].union(keys[j]).volume - keys[i].volume - keys[j].volume
            if waste > worst_waste:
                worst_waste = waste
                worst_pair = (i, j)
        left = [worst_pair[0]]
        right = [worst_pair[1]]
        left_box = keys[worst_pair[0]]
        right_box = keys[worst_pair[1]]

        remaining = [i for i in range(n) if i not in worst_pair]
        # Assign entries one at a time, most constrained first.
        while remaining:
            # Force-assign if one group must take everything left to reach min fill.
            if len(left) + len(remaining) <= self.min_fill:
                left.extend(remaining)
                break
            if len(right) + len(remaining) <= self.min_fill:
                right.extend(remaining)
                break
            best_idx = None
            best_diff = -math.inf
            for idx in remaining:
                d_left = left_box.enlargement(keys[idx])
                d_right = right_box.enlargement(keys[idx])
                diff = abs(d_left - d_right)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            assert best_idx is not None
            d_left = left_box.enlargement(keys[best_idx])
            d_right = right_box.enlargement(keys[best_idx])
            if d_left < d_right or (d_left == d_right and len(left) <= len(right)):
                left.append(best_idx)
                left_box = left_box.union(keys[best_idx])
            else:
                right.append(best_idx)
                right_box = right_box.union(keys[best_idx])
            remaining.remove(best_idx)
        return left, right


class RTree3D(Generic[V]):
    """The pg3D-Rtree public interface.

    Values of any type can be stored under a :class:`BoxST` key; the
    ReTraTree stores :class:`~repro.storage.heapfile.RID` record identifiers.
    """

    def __init__(self, max_entries: int = 16, min_entries: int | None = None) -> None:
        min_fill = min_entries if min_entries is not None else max(2, max_entries // 3)
        self._gist: GiST[BoxST, V] = GiST(
            Box3DAdapter(min_fill=min_fill),
            max_entries=max_entries,
            min_entries=min_fill,
        )

    def __len__(self) -> int:
        return len(self._gist)

    @property
    def height(self) -> int:
        return self._gist.height

    @property
    def bbox(self) -> BoxST | None:
        """Bounding box of everything stored, or ``None`` when empty."""
        return self._gist.root_key

    @property
    def gist(self) -> GiST[BoxST, V]:
        """The underlying GiST (exposed for invariant checks and ablations)."""
        return self._gist

    # -- updates ---------------------------------------------------------------

    def insert(self, box: BoxST, value: V) -> None:
        """Insert a value under its 3D bounding box."""
        self._gist.insert(box, value)

    def delete_value(self, value: V) -> int:
        """Delete every entry whose stored value equals ``value``."""
        return self._gist.delete(lambda _key, v: v == value)

    # -- queries ----------------------------------------------------------------

    def range_search(self, box: BoxST) -> list[V]:
        """Values whose keys intersect the query box."""
        return self._gist.search(box)

    def range_search_with_stats(self, box: BoxST) -> tuple[list[V], int]:
        """Range search that also reports how many tree nodes were visited."""
        return self._gist.search_count_nodes(box)

    def range_entries(self, box: BoxST) -> list[tuple[BoxST, V]]:
        """(key, value) pairs whose keys intersect the query box."""
        return list(self._gist.search_entries(box))

    def all_values(self) -> list[V]:
        """Every stored value."""
        return self._gist.all_values()

    def knn(self, point: PointST, k: int, time_scale: float = 0.0) -> list[tuple[float, V]]:
        """Best-first k-nearest-neighbour search from a spatiotemporal point.

        Distance is planar by default; a positive ``time_scale`` adds a
        weighted temporal component, making the search spatiotemporal.
        Returns ``(distance, value)`` pairs sorted by distance.
        """
        if k <= 0:
            return []

        def box_distance(box: BoxST) -> float:
            d_space = box.min_distance_2d(point)
            if time_scale <= 0:
                return d_space
            dt = max(box.tmin - point.t, 0.0, point.t - box.tmax)
            return math.hypot(d_space, dt * time_scale)

        counter = itertools.count()
        root = self._gist._root
        heap: list[tuple[float, int, object, bool]] = [(0.0, next(counter), root, False)]
        results: list[tuple[float, V]] = []
        while heap and len(results) < k:
            dist, _, item, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append((dist, item))  # type: ignore[arg-type]
                continue
            node = item
            for entry in node.entries:  # type: ignore[attr-defined]
                d = box_distance(entry.key)
                if node.is_leaf:  # type: ignore[attr-defined]
                    heapq.heappush(heap, (d, next(counter), entry.value, True))
                else:
                    heapq.heappush(heap, (d, next(counter), entry.child, False))
        return results

    def check_invariants(self) -> None:
        """Structural validation (delegates to the GiST)."""
        self._gist.check_invariants()


def str_bulk_load(
    items: Iterable[tuple[BoxST, V]],
    max_entries: int = 16,
) -> RTree3D[V]:
    """Sort-Tile-Recursive bulk loading.

    STR sorts the items by x-center, slices them into vertical slabs, sorts
    each slab by y-center, slices again, and finally sorts by t-center.  The
    result is inserted leaf-tile by leaf-tile so that spatially and temporally
    nearby entries end up in the same leaves, which is what makes the bulk-
    loaded tree faster to query than one built by repeated insertion
    (ablation E11).
    """
    items = list(items)
    tree: RTree3D[V] = RTree3D(max_entries=max_entries)
    if not items:
        return tree

    n = len(items)
    leaf_cap = max_entries
    n_leaves = math.ceil(n / leaf_cap)
    # Number of slabs along each of the first two sort dimensions.
    s = max(1, math.ceil(n_leaves ** (1.0 / 3.0)))

    items.sort(key=lambda kv: kv[0].center.x)
    slab_size_x = math.ceil(n / s)
    ordered: list[tuple[BoxST, V]] = []
    for i in range(0, n, slab_size_x):
        slab_x = items[i : i + slab_size_x]
        slab_x.sort(key=lambda kv: kv[0].center.y)
        slab_size_y = math.ceil(len(slab_x) / s)
        for j in range(0, len(slab_x), slab_size_y):
            slab_y = slab_x[j : j + slab_size_y]
            slab_y.sort(key=lambda kv: kv[0].center.t)
            ordered.extend(slab_y)

    for box, value in ordered:
        tree.insert(box, value)
    return tree
