"""The generic GiST tree.

The tree is height-balanced and grows from the leaves upwards, like a B-tree:
when a node overflows it is split with the key adapter's ``pick_split`` and
the split propagates towards the root.  All behaviour that depends on the key
type is delegated to a :class:`KeyAdapter`, mirroring PostgreSQL's GiST
support functions:

* ``consistent(key, query)``  -- can the subtree under ``key`` contain
  entries matching ``query``?
* ``union(keys)``             -- smallest key covering all ``keys``,
* ``penalty(key, new_key)``   -- cost of inserting ``new_key`` under ``key``
  (used to choose the insertion subtree),
* ``pick_split(entries)``     -- partition an overflowing node's entries into
  two groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Sequence
from typing import Any, Generic, TypeVar

__all__ = ["GiST", "KeyAdapter", "Entry"]

K = TypeVar("K")
V = TypeVar("V")


@dataclass
class Entry(Generic[K, V]):
    """A node entry: a key plus either a child node or a leaf value."""

    key: K
    child: "_Node[K, V] | None" = None
    value: V | None = None

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


@dataclass
class _Node(Generic[K, V]):
    """An internal or leaf node."""

    is_leaf: bool
    entries: list[Entry[K, V]] = field(default_factory=list)
    parent: "_Node[K, V] | None" = None

    def __len__(self) -> int:
        return len(self.entries)


class KeyAdapter(Generic[K]):
    """Extension point defining GiST behaviour for a key type.

    Subclasses must implement the four support methods below.  ``pick_split``
    has a default linear implementation that subclasses may override with a
    smarter strategy (the 3D R-tree uses a quadratic split).
    """

    def consistent(self, key: K, query: Any) -> bool:
        """Whether the subtree under ``key`` may contain matches for ``query``."""
        raise NotImplementedError

    def union(self, keys: Sequence[K]) -> K:
        """The smallest key covering every key in ``keys``."""
        raise NotImplementedError

    def penalty(self, key: K, new_key: K) -> float:
        """Cost of extending ``key`` to also cover ``new_key``."""
        raise NotImplementedError

    def pick_split(self, keys: Sequence[K]) -> tuple[list[int], list[int]]:
        """Partition entry indices into two non-empty groups.

        The default splits the sequence in half, which keeps the tree valid
        but gives poor clustering; real adapters should override it.
        """
        half = max(1, len(keys) // 2)
        return list(range(half)), list(range(half, len(keys)))


class GiST(Generic[K, V]):
    """A height-balanced generalized search tree.

    Parameters
    ----------
    adapter:
        The key adapter supplying the GiST support methods.
    max_entries:
        Node capacity ``M``; a node splits when it exceeds this.
    min_entries:
        Minimum fill ``m`` used by ``pick_split`` implementations.
    """

    def __init__(self, adapter: KeyAdapter[K], max_entries: int = 16, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.adapter = adapter
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(2, max_entries // 3)
        if self.min_entries * 2 > max_entries:
            raise ValueError("min_entries must be at most max_entries / 2")
        self._root: _Node[K, V] = _Node(is_leaf=True)
        self._size = 0

    # -- properties -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            h += 1
            node = node.entries[0].child  # type: ignore[assignment]
        return h

    @property
    def root_key(self) -> K | None:
        """Union key of the whole tree, or ``None`` when empty."""
        if not self._root.entries:
            return None
        return self.adapter.union([e.key for e in self._root.entries])

    # -- insertion -----------------------------------------------------------------

    def insert(self, key: K, value: V) -> None:
        """Insert a (key, value) pair."""
        leaf = self._choose_leaf(self._root, key)
        leaf.entries.append(Entry(key=key, value=value))
        self._size += 1
        self._handle_overflow(leaf)

    def _choose_leaf(self, node: _Node[K, V], key: K) -> _Node[K, V]:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (self.adapter.penalty(e.key, key), id(e)),
            )
            best.key = self.adapter.union([best.key, key])
            node = best.child  # type: ignore[assignment]
        return node

    def _handle_overflow(self, node: _Node[K, V]) -> None:
        while len(node.entries) > self.max_entries:
            left_idx, right_idx = self.adapter.pick_split([e.key for e in node.entries])
            if not left_idx or not right_idx:
                raise RuntimeError("pick_split returned an empty group")
            entries = node.entries
            left_entries = [entries[i] for i in left_idx]
            right_entries = [entries[i] for i in right_idx]

            right_node: _Node[K, V] = _Node(is_leaf=node.is_leaf, entries=right_entries)
            node.entries = left_entries
            if not node.is_leaf:
                for entry in node.entries:
                    entry.child.parent = node  # type: ignore[union-attr]
                for entry in right_node.entries:
                    entry.child.parent = right_node  # type: ignore[union-attr]

            left_key = self.adapter.union([e.key for e in node.entries])
            right_key = self.adapter.union([e.key for e in right_node.entries])

            parent = node.parent
            if parent is None:
                # Grow the tree: create a new root above the split node.
                new_root: _Node[K, V] = _Node(is_leaf=False)
                new_root.entries = [
                    Entry(key=left_key, child=node),
                    Entry(key=right_key, child=right_node),
                ]
                node.parent = new_root
                right_node.parent = new_root
                self._root = new_root
                return
            # Update the parent's entry for the split node and add the new sibling.
            for entry in parent.entries:
                if entry.child is node:
                    entry.key = left_key
                    break
            parent.entries.append(Entry(key=right_key, child=right_node))
            right_node.parent = parent
            node = parent

    # -- search ------------------------------------------------------------------------

    def search(self, query: Any) -> list[V]:
        """All values whose leaf keys are consistent with ``query``."""
        return [value for _key, value in self.search_entries(query)]

    def search_entries(self, query: Any) -> Iterator[tuple[K, V]]:
        """Iterate over (key, value) pairs consistent with ``query``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not self.adapter.consistent(entry.key, query):
                    continue
                if node.is_leaf:
                    yield entry.key, entry.value  # type: ignore[misc]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]

    def search_count_nodes(self, query: Any) -> tuple[list[V], int]:
        """Like :meth:`search` but also report how many nodes were visited.

        The node count is the index-efficiency measure used by benchmark E6.
        """
        results: list[V] = []
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            visited += 1
            for entry in node.entries:
                if not self.adapter.consistent(entry.key, query):
                    continue
                if node.is_leaf:
                    results.append(entry.value)  # type: ignore[arg-type]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        return results, visited

    def all_values(self) -> list[V]:
        """Every stored value (full index scan)."""
        out: list[V] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(e.value for e in node.entries)  # type: ignore[misc]
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return out

    # -- deletion ---------------------------------------------------------------------------

    def delete(self, predicate: Callable[[K, V], bool]) -> int:
        """Delete all leaf entries matching ``predicate``; returns the count.

        Deletion uses the simple "condense by reinsertion" strategy: leaves
        that underflow are left as-is (GiST does not require minimum fill for
        correctness), but parent keys are tightened bottom-up.
        """
        removed = self._delete_recursive(self._root, predicate)
        self._size -= removed
        # If the root is internal and has a single child, shrink the tree.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            child = self._root.entries[0].child
            assert child is not None
            child.parent = None
            self._root = child
        return removed

    def _delete_recursive(
        self, node: _Node[K, V], predicate: Callable[[K, V], bool]
    ) -> int:
        removed = 0
        if node.is_leaf:
            before = len(node.entries)
            node.entries = [
                e for e in node.entries if not predicate(e.key, e.value)  # type: ignore[arg-type]
            ]
            return before - len(node.entries)
        kept_entries = []
        for entry in node.entries:
            assert entry.child is not None
            removed += self._delete_recursive(entry.child, predicate)
            if entry.child.entries:
                entry.key = self.adapter.union([e.key for e in entry.child.entries])
                kept_entries.append(entry)
        node.entries = kept_entries
        return removed

    # -- validation (used by tests) --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`AssertionError` on violation.

        * every parent key covers (is the union of) its child's keys,
        * all leaves are at the same depth,
        * no node except the root exceeds ``max_entries``.
        """
        leaf_depths: set[int] = set()

        def visit(node: _Node[K, V], depth: int) -> None:
            assert len(node.entries) <= self.max_entries, "node overflow"
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            for entry in node.entries:
                assert entry.child is not None, "internal entry without child"
                child_union = self.adapter.union([e.key for e in entry.child.entries])
                combined = self.adapter.union([entry.key, child_union])
                assert self._keys_equal(combined, entry.key), (
                    "parent key does not cover child keys"
                )
                visit(entry.child, depth + 1)

        if self._root.entries:
            visit(self._root, 0)
            assert len(leaf_depths) == 1, "leaves at different depths"

    @staticmethod
    def _keys_equal(a: Any, b: Any) -> bool:
        return a == b
