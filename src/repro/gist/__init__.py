"""Generalized Search Tree (GiST) framework.

PostgreSQL's GiST interface lets an extension define a balanced search tree
by supplying a handful of key methods (``consistent``, ``union``,
``penalty``, ``picksplit``).  Hermes@PostgreSQL uses exactly this interface
to implement its pg3D-Rtree.  :class:`~repro.gist.tree.GiST` is the generic
tree; :class:`~repro.gist.tree.KeyAdapter` is the extension point, and the
3D R-tree instantiation lives in :mod:`repro.index.rtree3d`.
"""

from repro.gist.tree import GiST, KeyAdapter, Entry

__all__ = ["GiST", "KeyAdapter", "Entry"]
